"""Disk-backed B+-tree mapping 64-bit keys to 64-bit values.

The reproduction's stand-in for the paper's "B+-tree indexes ... created
wherever necessary for all the tables used": primarily the node-ID to
RID index that the PM baseline uses to fetch parents and children
during selective refinement, which is exactly the per-node retrieval
cost Direct Mesh is designed to avoid.

One node per page.  Page 0 is metadata.  Leaves are chained for range
scans.  Keys are unique; inserting an existing key overwrites.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

from repro.errors import IndexError_
from repro.storage.database import Segment

__all__ = ["BPlusTree"]

_META = struct.Struct("<4sIHQ")
_MAGIC = b"BPT1"
_HEADER = struct.Struct("<BHI")  # type, count, next-leaf (leaves only)
_LEAF_ENTRY = struct.Struct("<QQ")
_KEY = struct.Struct("<Q")
_CHILD = struct.Struct("<I")

_LEAF = 0
_INTERNAL = 1
_NO_PAGE = 0xFFFFFFFF


class BPlusTree:
    """A B+-tree stored in one database segment."""

    def __init__(self, segment: Segment) -> None:
        self._segment = segment
        page = segment.payload_size
        self._leaf_cap = (page - _HEADER.size) // _LEAF_ENTRY.size
        self._internal_cap = (page - _HEADER.size - _CHILD.size) // (
            _KEY.size + _CHILD.size
        )
        if segment.n_pages == 0:
            self._bootstrap()
        else:
            self._load_meta()

    # -- metadata ----------------------------------------------------------

    def _bootstrap(self) -> None:
        meta_no, _ = self._segment.allocate()
        if meta_no != 0:
            raise IndexError_("meta page must be page 0")
        root_no, buf = self._segment.allocate()
        self._write_leaf(root_no, [], _NO_PAGE, buf=buf)
        self._root = root_no
        self._height = 1
        self._count = 0
        self._save_meta()

    def _load_meta(self) -> None:
        buf = self._segment.fetch(0)
        magic, root, height, count = _META.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise IndexError_(f"segment {self._segment.name} is not a B+-tree")
        self._root = root
        self._height = height
        self._count = count

    def _save_meta(self) -> None:
        buf = self._segment.fetch(0)
        _META.pack_into(buf, 0, _MAGIC, self._root, self._height, self._count)
        self._segment.mark_dirty(0)

    # -- node codecs ----------------------------------------------------------

    def _read_node(self, page_no: int):
        buf = self._segment.fetch(page_no)
        node_type, count, next_leaf = _HEADER.unpack_from(buf, 0)
        if node_type == _LEAF:
            entries = [
                _LEAF_ENTRY.unpack_from(buf, _HEADER.size + i * _LEAF_ENTRY.size)
                for i in range(count)
            ]
            return _LEAF, entries, next_leaf
        keys = []
        children = []
        offset = _HEADER.size
        (child0,) = _CHILD.unpack_from(buf, offset)
        children.append(child0)
        offset += _CHILD.size
        for _ in range(count):
            (key,) = _KEY.unpack_from(buf, offset)
            offset += _KEY.size
            (child,) = _CHILD.unpack_from(buf, offset)
            offset += _CHILD.size
            keys.append(key)
            children.append(child)
        return _INTERNAL, (keys, children), _NO_PAGE

    def _write_leaf(
        self,
        page_no: int,
        entries: Sequence[tuple[int, int]],
        next_leaf: int,
        buf: bytearray | None = None,
    ) -> None:
        if len(entries) > self._leaf_cap:
            raise IndexError_(f"leaf overflow: {len(entries)}")
        if buf is None:
            buf = self._segment.fetch(page_no)
        _HEADER.pack_into(buf, 0, _LEAF, len(entries), next_leaf)
        offset = _HEADER.size
        for key, value in entries:
            _LEAF_ENTRY.pack_into(buf, offset, key, value)
            offset += _LEAF_ENTRY.size
        self._segment.mark_dirty(page_no)

    def _write_internal(
        self,
        page_no: int,
        keys: Sequence[int],
        children: Sequence[int],
        buf: bytearray | None = None,
    ) -> None:
        if len(keys) > self._internal_cap:
            raise IndexError_(f"internal overflow: {len(keys)}")
        if len(children) != len(keys) + 1:
            raise IndexError_("children/keys arity mismatch")
        if buf is None:
            buf = self._segment.fetch(page_no)
        _HEADER.pack_into(buf, 0, _INTERNAL, len(keys), _NO_PAGE)
        offset = _HEADER.size
        _CHILD.pack_into(buf, offset, children[0])
        offset += _CHILD.size
        for key, child in zip(keys, children[1:]):
            _KEY.pack_into(buf, offset, key)
            offset += _KEY.size
            _CHILD.pack_into(buf, offset, child)
            offset += _CHILD.size
        self._segment.mark_dirty(page_no)

    # -- properties -----------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Tree height (1 = root is a leaf)."""
        return self._height

    # -- search -----------------------------------------------------------------------

    def _descend(self, key: int) -> list[int]:
        """Page path from root to the leaf that would hold ``key``."""
        path = [self._root]
        while True:
            node_type, payload, _ = self._read_node(path[-1])
            if node_type == _LEAF:
                return path
            keys, children = payload
            idx = _upper_bound(keys, key)
            path.append(children[idx])

    def get(self, key: int) -> int | None:
        """The value stored for ``key``, or ``None``."""
        leaf_no = self._descend(key)[-1]
        _, entries, _ = self._read_node(leaf_no)
        idx = _entry_search(entries, key)
        if idx is not None:
            return entries[idx][1]
        return None

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """Iterate ``(key, value)`` for ``lo <= key <= hi``."""
        leaf_no = self._descend(lo)[-1]
        while leaf_no != _NO_PAGE:
            _, entries, next_leaf = self._read_node(leaf_no)
            for key, value in entries:
                if key > hi:
                    return
                if key >= lo:
                    yield (key, value)
            leaf_no = next_leaf

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate every ``(key, value)`` in key order."""
        yield from self.range(0, (1 << 64) - 1)

    # -- insertion ---------------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Insert or overwrite ``key``."""
        path = self._descend(key)
        leaf_no = path[-1]
        _, entries, next_leaf = self._read_node(leaf_no)
        idx = _entry_search(entries, key)
        if idx is not None:
            entries[idx] = (key, value)
            self._write_leaf(leaf_no, entries, next_leaf)
            return
        pos = _upper_bound([k for k, _ in entries], key)
        entries.insert(pos, (key, value))
        self._count += 1
        if len(entries) <= self._leaf_cap:
            self._write_leaf(leaf_no, entries, next_leaf)
            self._save_meta()
            return
        # Split the leaf.
        mid = len(entries) // 2
        right = entries[mid:]
        left = entries[:mid]
        new_no, new_buf = self._segment.allocate()
        self._write_leaf(new_no, right, next_leaf, buf=new_buf)
        self._write_leaf(leaf_no, left, new_no)
        self._propagate_split(path[:-1], leaf_no, right[0][0], new_no)
        self._save_meta()

    def _propagate_split(
        self, path: list[int], left_no: int, sep_key: int, right_no: int
    ) -> None:
        if not path:
            root_no, buf = self._segment.allocate()
            self._write_internal(root_no, [sep_key], [left_no, right_no], buf=buf)
            self._root = root_no
            self._height += 1
            return
        parent_no = path[-1]
        _, (keys, children), _ = self._read_node(parent_no)
        idx = children.index(left_no)
        keys.insert(idx, sep_key)
        children.insert(idx + 1, right_no)
        if len(keys) <= self._internal_cap:
            self._write_internal(parent_no, keys, children)
            return
        mid = len(keys) // 2
        up_key = keys[mid]
        left_keys, right_keys = keys[:mid], keys[mid + 1 :]
        left_children, right_children = children[: mid + 1], children[mid + 1 :]
        new_no, new_buf = self._segment.allocate()
        self._write_internal(new_no, right_keys, right_children, buf=new_buf)
        self._write_internal(parent_no, left_keys, left_children)
        self._propagate_split(path[:-1], parent_no, up_key, new_no)

    # -- deletion ----------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present.

        Deletion is *lazy* (the common production trade-off): the
        entry is dropped from its leaf but underfull nodes are left in
        place, to be reclaimed by :meth:`compact`.  Separator keys in
        internal nodes may outlive the entry, which is harmless for
        search correctness.
        """
        path = self._descend(key)
        leaf_no = path[-1]
        _, entries, next_leaf = self._read_node(leaf_no)
        idx = _entry_search(entries, key)
        if idx is None:
            return False
        del entries[idx]
        self._write_leaf(leaf_no, entries, next_leaf)
        self._count -= 1
        self._save_meta()
        return True

    def compact(self) -> None:
        """Rebuild the tree densely from its live entries.

        Reclaims the space lazy deletion leaves behind.  The rebuilt
        tree lives in fresh pages of the same segment (old pages are
        abandoned; a real system would recycle them through a free
        list).
        """
        items = list(self.items())
        root_no, buf = self._segment.allocate()
        self._write_leaf(root_no, [], _NO_PAGE, buf=buf)
        self._root = root_no
        self._height = 1
        self._count = 0
        self._save_meta()
        if items:
            self.bulk_load(items)

    # -- bulk loading ------------------------------------------------------------------

    def bulk_load(self, items: Sequence[tuple[int, int]]) -> None:
        """Replace contents by packing sorted unique ``(key, value)``."""
        if self._count:
            raise IndexError_("bulk_load requires an empty tree")
        if not items:
            return
        for (a, _), (b, _) in zip(items, items[1:]):
            if a >= b:
                raise IndexError_("bulk_load needs strictly sorted keys")
        fill = max(2, int(self._leaf_cap * 0.9))
        # Build leaves.
        leaf_groups = [items[i : i + fill] for i in range(0, len(items), fill)]
        leaf_pages: list[int] = []
        for _ in leaf_groups:
            page_no, _ = self._segment.allocate()
            leaf_pages.append(page_no)
        for i, group in enumerate(leaf_groups):
            nxt = leaf_pages[i + 1] if i + 1 < len(leaf_pages) else _NO_PAGE
            self._write_leaf(leaf_pages[i], group, nxt)
        level_pages = leaf_pages
        level_keys = [group[0][0] for group in leaf_groups]
        height = 1
        ifill = max(2, int(self._internal_cap * 0.9))
        while len(level_pages) > 1:
            next_pages: list[int] = []
            next_keys: list[int] = []
            for i in range(0, len(level_pages), ifill + 1):
                chunk_pages = level_pages[i : i + ifill + 1]
                chunk_keys = level_keys[i + 1 : i + len(chunk_pages)]
                page_no, buf = self._segment.allocate()
                self._write_internal(page_no, chunk_keys, chunk_pages, buf=buf)
                next_pages.append(page_no)
                next_keys.append(level_keys[i])
            level_pages = next_pages
            level_keys = next_keys
            height += 1
        self._root = level_pages[0]
        self._height = height
        self._count = len(items)
        self._save_meta()

    # -- validation --------------------------------------------------------------------

    def validate(self) -> None:
        """Check key ordering and leaf chaining."""
        previous = -1
        seen = 0
        for key, _ in self.items():
            if key <= previous:
                raise IndexError_(f"key order violated at {key}")
            previous = key
            seen += 1
        if seen != self._count:
            raise IndexError_(f"count mismatch: {seen} != {self._count}")


def _upper_bound(keys: Sequence[int], key: int) -> int:
    """First index whose key is strictly greater than ``key``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] <= key:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _entry_search(entries: Sequence[tuple[int, int]], key: int) -> int | None:
    lo, hi = 0, len(entries)
    while lo < hi:
        mid = (lo + hi) // 2
        if entries[mid][0] < key:
            lo = mid + 1
        elif entries[mid][0] > key:
            hi = mid
        else:
            return mid
    return None
