"""Contour-line extraction (marching squares) and ASCII contour maps.

Terrain queries return point sets; contour lines are the classic
cartographic way to check that a retrieved approximation still
captures the relief.  The extractor runs marching squares over a
raster (either a :class:`~repro.terrain.gridfield.GridField` or a
rasterised query result) and returns polyline segments per level;
:func:`render_contours` draws them as an ASCII map.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.terrain.gridfield import GridField

__all__ = ["contour_segments", "render_contours"]

# Cell-edge interpolation points, keyed by edge index:
# 0 = top (between corner 0-1), 1 = right (1-2), 2 = bottom (3-2),
# 3 = left (0-3).  Corners: 0 = (r, c), 1 = (r, c+1), 2 = (r+1, c+1),
# 3 = (r+1, c).
_CASE_EDGES: dict[int, list[tuple[int, int]]] = {
    1: [(3, 2)],
    2: [(2, 1)],
    3: [(3, 1)],
    4: [(0, 1)],
    5: [(3, 0), (2, 1)],
    6: [(0, 2)],
    7: [(3, 0)],
    8: [(3, 0)],
    9: [(0, 2)],
    10: [(3, 2), (0, 1)],
    11: [(0, 1)],
    12: [(3, 1)],
    13: [(2, 1)],
    14: [(3, 2)],
}


def contour_segments(
    field: GridField, level: float
) -> list[tuple[tuple[float, float], tuple[float, float]]]:
    """Marching-squares segments of the iso-line at ``level``.

    Returns ``((x0, y0), (x1, y1))`` pairs in terrain coordinates.
    """
    h = field.heights
    rows, cols = h.shape
    ox, oy = field.origin
    cell = field.cell_size
    segments: list[tuple[tuple[float, float], tuple[float, float]]] = []

    def edge_point(r: int, c: int, edge: int) -> tuple[float, float]:
        # Interpolate where the iso-line crosses the cell edge.
        corners = {
            0: ((r, c), (r, c + 1)),
            1: ((r, c + 1), (r + 1, c + 1)),
            2: ((r + 1, c), (r + 1, c + 1)),
            3: ((r, c), (r + 1, c)),
        }
        (r0, c0), (r1, c1) = corners[edge]
        v0 = h[r0, c0]
        v1 = h[r1, c1]
        t = 0.5 if v1 == v0 else (level - v0) / (v1 - v0)
        t = min(1.0, max(0.0, t))
        rr = r0 + (r1 - r0) * t
        cc = c0 + (c1 - c0) * t
        return (ox + cc * cell, oy + rr * cell)

    above = h >= level
    for r in range(rows - 1):
        for c in range(cols - 1):
            case = (
                (8 if above[r, c] else 0)
                | (4 if above[r, c + 1] else 0)
                | (2 if above[r + 1, c + 1] else 0)
                | (1 if above[r + 1, c] else 0)
            )
            for e0, e1 in _CASE_EDGES.get(case, ()):
                segments.append((edge_point(r, c, e0), edge_point(r, c, e1)))
    return segments


def render_contours(
    field: GridField,
    levels: list[float] | int = 6,
    width: int = 72,
    height: int = 28,
) -> str:
    """An ASCII contour map of ``field``.

    Args:
        field: the raster.
        levels: explicit iso-levels, or a count to space evenly
            between the elevation extremes.
        width, height: character-grid size.
    """
    z_min, z_max = field.elevation_range()
    if isinstance(levels, int):
        if levels < 1:
            raise ReproError("need at least one contour level")
        step = (z_max - z_min) / (levels + 1)
        if step == 0:
            levels_list = [z_min]
        else:
            levels_list = [z_min + step * (i + 1) for i in range(levels)]
    else:
        levels_list = list(levels)
        if not levels_list:
            raise ReproError("need at least one contour level")

    bounds = field.bounds()
    grid = [[" "] * width for _ in range(height)]
    glyphs = ".:-=+*#%@"
    for index, level in enumerate(levels_list):
        glyph = glyphs[min(index, len(glyphs) - 1)]
        for (x0, y0), (x1, y1) in contour_segments(field, level):
            # Rasterise the segment with a few samples.
            steps = max(
                2,
                int(
                    max(
                        abs(x1 - x0) / (bounds.width or 1) * width,
                        abs(y1 - y0) / (bounds.height or 1) * height,
                    )
                )
                + 1,
            )
            for i in range(steps + 1):
                t = i / steps
                x = x0 + (x1 - x0) * t
                y = y0 + (y1 - y0) * t
                col = int(
                    (x - bounds.min_x) / (bounds.width or 1) * (width - 1)
                )
                row = int(
                    (y - bounds.min_y) / (bounds.height or 1) * (height - 1)
                )
                if 0 <= col < width and 0 <= row < height:
                    grid[height - 1 - row][col] = glyph
    return "\n".join("".join(row) for row in grid)
