"""ASCII terrain rendering for terminals, examples, and smoke tests.

Not a substitute for the paper's OpenGL viewer — just enough to *see*
query results: an elevation ramp or a simple north-west hillshade over
a character grid.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ReproError
from repro.geometry.primitives import Rect
from repro.terrain.gridfield import GridField

__all__ = ["render_points", "render_field", "render_hillshade"]

#: Dark-to-light elevation ramp.
_RAMP = " .:-=+*#%@"


def render_points(
    points: Sequence[tuple[float, float, float]],
    width: int = 72,
    height: int = 28,
    bounds: Rect | None = None,
) -> str:
    """Render scattered 3D points as an elevation-ramp character grid.

    Cells containing no point stay blank, so sparse query results show
    their actual coverage.
    """
    if not points:
        raise ReproError("no points to render")
    if bounds is None:
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        bounds = Rect(min(xs), min(ys), max(xs), max(ys))
    zs = [p[2] for p in points]
    z_min, z_max = min(zs), max(zs)
    z_span = (z_max - z_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    w = bounds.width or 1.0
    h = bounds.height or 1.0
    for x, y, z in points:
        col = int((x - bounds.min_x) / w * (width - 1))
        row = int((y - bounds.min_y) / h * (height - 1))
        if not (0 <= col < width and 0 <= row < height):
            continue
        level = int((z - z_min) / z_span * (len(_RAMP) - 1))
        current = grid[height - 1 - row][col]
        candidate = _RAMP[level]
        if current == " " or _RAMP.index(current) < level:
            grid[height - 1 - row][col] = candidate
    return "\n".join("".join(row) for row in grid)


def render_field(
    field: GridField, width: int = 72, height: int = 28
) -> str:
    """Render a raster with the elevation ramp."""
    bounds = field.bounds()
    xs = np.linspace(bounds.min_x, bounds.max_x, width)
    ys = np.linspace(bounds.max_y, bounds.min_y, height)
    lines = []
    z_min, z_max = field.elevation_range()
    span = (z_max - z_min) or 1.0
    for y in ys:
        samples = field.sample_many(xs, np.full(width, y))
        idx = ((samples - z_min) / span * (len(_RAMP) - 1)).astype(int)
        lines.append("".join(_RAMP[i] for i in idx))
    return "\n".join(lines)


def render_hillshade(
    field: GridField,
    width: int = 72,
    height: int = 28,
    azimuth_deg: float = 315.0,
    altitude_deg: float = 45.0,
) -> str:
    """Render a raster as a hillshade (illumination from ``azimuth``)."""
    bounds = field.bounds()
    xs = np.linspace(bounds.min_x, bounds.max_x, width)
    ys = np.linspace(bounds.max_y, bounds.min_y, height)
    xx, yy = np.meshgrid(xs, ys)
    z = field.sample_many(xx.ravel(), yy.ravel()).reshape(height, width)
    step_x = (bounds.width or 1.0) / width
    step_y = (bounds.height or 1.0) / height
    dz_dx = np.gradient(z, axis=1) / step_x
    dz_dy = -np.gradient(z, axis=0) / step_y
    azimuth = math.radians(azimuth_deg)
    altitude = math.radians(altitude_deg)
    slope = np.arctan(np.hypot(dz_dx, dz_dy))
    aspect = np.arctan2(dz_dy, -dz_dx)
    shade = np.sin(altitude) * np.cos(slope) + np.cos(altitude) * np.sin(
        slope
    ) * np.cos(azimuth - aspect)
    shade = np.clip((shade + 1) / 2, 0, 1)
    lines = []
    for row in shade:
        idx = (row * (len(_RAMP) - 1)).astype(int)
        lines.append("".join(_RAMP[i] for i in idx))
    return "\n".join(lines)
