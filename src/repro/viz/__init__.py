"""Minimal visualisation: ASCII rendering, contour maps (here) and
OBJ export (:func:`repro.terrain.io.write_obj`)."""

from repro.viz.ascii import render_field, render_hillshade, render_points
from repro.viz.contours import contour_segments, render_contours

__all__ = [
    "contour_segments",
    "render_contours",
    "render_field",
    "render_hillshade",
    "render_points",
]
