"""File-backed page storage (one file per segment).

A :class:`Pager` owns one operating-system file holding an array of
fixed-size pages.  It performs *raw* page I/O and records every
physical access in the shared :class:`~repro.storage.stats.DiskStats`;
it does **no caching** — that is the buffer pool's job, and keeping the
layers separate is what makes the disk-access accounting trustworthy.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import DiskStats

__all__ = ["Pager"]


class Pager:
    """Raw page I/O over a single file.

    Attributes:
        name: the segment name used for statistics attribution.
        page_size: bytes per page.
    """

    def __init__(
        self,
        path: str | Path,
        stats: DiskStats,
        name: str | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self._path = Path(path)
        self.name = name if name is not None else self._path.stem
        self.page_size = page_size
        self._stats = stats
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(self._path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % page_size != 0:
            os.close(self._fd)
            raise StorageError(
                f"{self._path}: size {size} is not a multiple of {page_size}"
            )
        self._n_pages = size // page_size
        self._closed = False
        self._alloc_lock = threading.Lock()
        #: Optional :class:`repro.storage.wal.WriteAheadLog`; when set,
        #: every in-place page write is logged first.
        self.wal = None
        #: Simulated per-read device latency in seconds (0 = off).
        #: ``pread`` on a warm OS page cache takes microseconds, which
        #: makes wall-clock benchmarks of a *disk-resident* design
        #: meaningless; sleeping here restores an I/O-bound profile so
        #: throughput experiments exercise the same trade-offs the
        #: disk-access counters measure.  The sleep releases the GIL,
        #: so concurrent readers overlap their stalls — exactly what
        #: the buffer pool's lock striping is for.
        self.io_latency = 0.0
        #: Optional :class:`repro.storage.faults.FaultInjector`; when
        #: set, every physical read consults it first and may raise
        #: :class:`~repro.errors.TransientIOError` or stall.  The
        #: failed read is *not* counted as a physical read — the page
        #: never arrived, matching how a real device error behaves.
        self.fault_injector = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying file descriptor (idempotent)."""
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - defensive
        try:
            self.close()
        except Exception:
            pass

    # -- page I/O ----------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        # Mutations are single-writer (builds are not parallelised), so
        # this racy read can only lag a concurrent allocate, never tear.
        return self._n_pages  # reprolint: disable=R1 single-writer

    def allocate(self) -> int:
        """Extend the file by one zeroed page; returns its page number.

        Allocation writes the page, which counts as a physical write.
        """
        self._check_open()
        with self._alloc_lock:
            page_no = self._n_pages
            os.pwrite(
                self._fd, b"\x00" * self.page_size, page_no * self.page_size
            )
            self._n_pages += 1
        self._stats.record_physical_write(self.name)
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        """Read page ``page_no`` from disk (a *physical read*)."""
        self._check_open()
        self._check_range(page_no)
        if self.fault_injector is not None:
            self.fault_injector.fire("pager.read", f"{self.name}:{page_no}")
        if self.io_latency > 0.0:
            time.sleep(self.io_latency)
        data = os.pread(self._fd, self.page_size, page_no * self.page_size)
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.name}: short read of page {page_no} "
                f"({len(data)}/{self.page_size} bytes)"
            )
        self._stats.record_physical_read(self.name)
        if self._stats.trace_hook is not None:
            self._stats.trace_hook(self.name, page_no)
        return bytearray(data)

    def write_page(self, page_no: int, data: bytes | bytearray) -> None:
        """Write page ``page_no`` to disk (a *physical write*).

        When a write-ahead log is attached (:attr:`wal`), the page
        image is appended to the log before the in-place write.
        """
        self._check_open()
        self._check_range(page_no)
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.name}: page payload is {len(data)} bytes, "
                f"expected {self.page_size}"
            )
        if self.wal is not None:
            self.wal.log_page(self.name, page_no, bytes(data))
        os.pwrite(self._fd, bytes(data), page_no * self.page_size)
        self._stats.record_physical_write(self.name)

    def sync(self) -> None:
        """fsync the file."""
        self._check_open()
        os.fsync(self._fd)

    # -- checks ----------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.name}: pager is closed")

    def _check_range(self, page_no: int) -> None:
        # reprolint: disable=R1 single-writer allocation; racy read tolerated
        if not 0 <= page_no < self._n_pages:
            raise StorageError(
                f"{self.name}: page {page_no} out of range "
                f"0..{self._n_pages - 1}"  # reprolint: disable=R1 single-writer
            )
