"""File-backed page storage (one file per segment).

A :class:`Pager` owns one operating-system file holding an array of
fixed-size pages.  It performs *raw* page I/O and records every
physical access in the shared :class:`~repro.storage.stats.DiskStats`;
it does **no caching** — that is the buffer pool's job, and keeping the
layers separate is what makes the disk-access accounting trustworthy.

With ``checksums`` enabled (the v2 page format), every page written
carries a crc32 trailer in its last :data:`~repro.storage.page.CHECKSUM_SIZE`
bytes — stamped by :meth:`Pager.write_page`/:meth:`Pager.allocate` and
verified by :meth:`Pager.read_page`, which raises
:class:`~repro.errors.PageCorruptionError` on a mismatch.  Layout code
above the pager must size itself to :attr:`Pager.payload_size`, never
``page_size``.  Raw page I/O outside this module (and the WAL and the
fsck machinery) is banned by reprolint rule R7.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import PageCorruptionError, StorageError
from repro.obs.lockwatch import watched_lock
from repro.storage.page import (
    CHECKSUM_SIZE,
    DEFAULT_PAGE_SIZE,
    page_checksums,
    seal_page,
)
from repro.storage.stats import DiskStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.faults import FaultInjector
    from repro.storage.wal import WriteAheadLog

__all__ = ["Pager"]


class Pager:
    """Raw page I/O over a single file.

    Attributes:
        name: the segment name used for statistics attribution.
        page_size: bytes per page on disk.
        checksums: whether pages carry a v2 crc32 trailer.
    """

    def __init__(
        self,
        path: str | Path,
        stats: DiskStats,
        name: str | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        checksums: bool = False,
    ) -> None:
        self._path = Path(path)
        self.name = name if name is not None else self._path.stem
        self.page_size = page_size
        self.checksums = checksums
        self._stats = stats
        flags = os.O_RDWR | os.O_CREAT
        try:
            self._fd = os.open(self._path, flags, 0o644)
        except OSError as exc:
            raise StorageError(
                f"{self._path}: cannot open segment file: {exc}",
                path=str(self._path),
            ) from exc
        # From here on the fd is owned: any failure before __init__
        # completes must close it, or the descriptor leaks.
        try:
            try:
                size = os.fstat(self._fd).st_size
            except OSError as exc:
                raise StorageError(
                    f"{self._path}: cannot stat segment file: {exc}",
                    path=str(self._path),
                ) from exc
            if size % page_size != 0:
                raise StorageError(
                    f"{self._path}: size {size} is not a multiple of "
                    f"{page_size}",
                    path=str(self._path),
                )
        except BaseException:
            os.close(self._fd)
            raise
        self._n_pages = size // page_size
        self._closed = False
        self._alloc_lock = watched_lock("Pager._alloc_lock")
        self._crc_lock = watched_lock("Pager._crc_lock")
        self._crc_failures = 0
        #: Optional :class:`repro.storage.wal.WriteAheadLog`; when set,
        #: every in-place page write is logged first.
        self.wal: "WriteAheadLog | None" = None
        #: Simulated per-read device latency in seconds (0 = off).
        #: ``pread`` on a warm OS page cache takes microseconds, which
        #: makes wall-clock benchmarks of a *disk-resident* design
        #: meaningless; sleeping here restores an I/O-bound profile so
        #: throughput experiments exercise the same trade-offs the
        #: disk-access counters measure.  The sleep releases the GIL,
        #: so concurrent readers overlap their stalls — exactly what
        #: the buffer pool's lock striping is for.
        self.io_latency = 0.0
        #: Optional :class:`repro.storage.faults.FaultInjector`; when
        #: set, every physical read consults it first and may raise
        #: :class:`~repro.errors.TransientIOError`, stall, or corrupt
        #: the page bytes in flight.  A failed read is *not* counted
        #: as a physical read — the page never arrived, matching how a
        #: real device error behaves.
        self.fault_injector: "FaultInjector | None" = None
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`; when
        #: set, checksum mismatches increment ``storage.crc_failures``.
        self.metrics: "MetricsRegistry | None" = None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying file descriptor (idempotent)."""
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - defensive
        try:
            self.close()
        except Exception:
            pass

    # -- page I/O ----------------------------------------------------------------

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        # Mutations are single-writer (builds are not parallelised), so
        # this racy read can only lag a concurrent allocate, never tear.
        return self._n_pages  # reprolint: disable=R1 single-writer

    @property
    def payload_size(self) -> int:
        """Bytes per page usable by layout code.

        ``page_size`` minus the checksum trailer under the v2 format;
        the full page under v1.  Every page layout (slotted pages,
        index nodes) must size itself to this, not ``page_size``.
        """
        if self.checksums:
            return self.page_size - CHECKSUM_SIZE
        return self.page_size

    @property
    def crc_failures(self) -> int:
        """Checksum mismatches seen by :meth:`read_page` so far."""
        with self._crc_lock:
            return self._crc_failures

    @property
    def stats(self) -> DiskStats:
        """The shared :class:`DiskStats` this pager records into."""
        return self._stats

    def allocate(self) -> int:
        """Extend the file by one zeroed page; returns its page number.

        Allocation writes the page, which counts as a physical write.
        """
        self._check_open()
        with self._alloc_lock:
            page_no = self._n_pages
            page = bytearray(self.page_size)
            if self.checksums:
                seal_page(page)
            try:
                # reprolint: disable=R10 zero-fill must land before the page is visible
                os.pwrite(self._fd, bytes(page), page_no * self.page_size)
            except OSError as exc:
                raise StorageError(
                    f"{self.name}: allocation of page {page_no} failed: "
                    f"{exc}",
                    path=str(self._path),
                    page=page_no,
                ) from exc
            self._n_pages += 1
        self._stats.record_physical_write(self.name)
        return page_no

    def read_page(self, page_no: int) -> bytearray:
        """Read page ``page_no`` from disk (a *physical read*).

        Under the v2 format the page's crc32 trailer is verified;
        a mismatch raises :class:`~repro.errors.PageCorruptionError`
        (and, like an injected fault, does not count as a physical
        read — corrupt bytes are not a served page).
        """
        self._check_open()
        self._check_range(page_no)
        if self.fault_injector is not None:
            self.fault_injector.fire("pager.read", f"{self.name}:{page_no}")
        if self.io_latency > 0.0:
            time.sleep(self.io_latency)
        try:
            data = os.pread(self._fd, self.page_size, page_no * self.page_size)
        except OSError as exc:
            raise StorageError(
                f"{self.name}: read of page {page_no} failed: {exc}",
                path=str(self._path),
                page=page_no,
            ) from exc
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.name}: short read of page {page_no} "
                f"({len(data)}/{self.page_size} bytes)",
                path=str(self._path),
                page=page_no,
            )
        buf = bytearray(data)
        if self.fault_injector is not None:
            self.fault_injector.corrupt_page(buf, f"{self.name}:{page_no}")
        if self.checksums:
            stored, computed = page_checksums(buf)
            if stored != computed:
                self._record_crc_failure()
                raise PageCorruptionError(
                    f"{self.name}: page {page_no} failed checksum "
                    f"verification",
                    segment=self.name,
                    page=page_no,
                    expected=stored,
                    actual=computed,
                )
        self._stats.record_physical_read(self.name)
        if self._stats.trace_hook is not None:
            self._stats.trace_hook(self.name, page_no)
        return buf

    def read_pages(self, start: int, count: int) -> bytes:
        """Read ``count`` consecutive pages in one physical transfer.

        The cluster fast path stores each cluster as a contiguous page
        *run*; fetching it with one sequential ``pread`` instead of
        ``count`` single-page reads is the I/O economy the layout buys.
        The accounting stays honest: the read is recorded as ``count``
        pages (``DiskStats.record_physical_read(..., pages=count)``),
        never as one probe call, and the simulated device latency is
        charged once — a sequential multi-page transfer pays one seek.

        Fault injection and checksum verification remain page-granular
        so injection drills and ``fsck`` see the same surface as
        :meth:`read_page`: each page of the run fires the injector and
        verifies its own crc trailer, and the first bad page raises
        :class:`~repro.errors.PageCorruptionError` for the whole run
        (corrupt bytes are not a served page, so nothing is counted).

        Returns the raw run (``count * page_size`` bytes, trailers
        included); :meth:`repro.storage.database.Segment.read_run`
        strips the trailers into a contiguous payload.
        """
        self._check_open()
        if count < 1:
            raise StorageError(
                f"{self.name}: run length must be >= 1, got {count}"
            )
        self._check_range(start)
        self._check_range(start + count - 1)
        if self.fault_injector is not None:
            for page_no in range(start, start + count):
                self.fault_injector.fire(
                    "pager.read", f"{self.name}:{page_no}"
                )
        if self.io_latency > 0.0:
            time.sleep(self.io_latency)
        length = count * self.page_size
        try:
            data = os.pread(self._fd, length, start * self.page_size)
        except OSError as exc:
            raise StorageError(
                f"{self.name}: read of pages {start}..{start + count - 1} "
                f"failed: {exc}",
                path=str(self._path),
                page=start,
            ) from exc
        if len(data) != length:
            raise StorageError(
                f"{self.name}: short read of pages "
                f"{start}..{start + count - 1} ({len(data)}/{length} bytes)",
                path=str(self._path),
                page=start,
            )
        buf = bytearray(data)
        for i in range(count):
            page_no = start + i
            off = i * self.page_size
            if self.fault_injector is not None:
                page = bytearray(buf[off:off + self.page_size])
                self.fault_injector.corrupt_page(
                    page, f"{self.name}:{page_no}"
                )
                buf[off:off + self.page_size] = page
            if self.checksums:
                stored, computed = page_checksums(
                    buf[off:off + self.page_size]
                )
                if stored != computed:
                    self._record_crc_failure()
                    raise PageCorruptionError(
                        f"{self.name}: page {page_no} failed checksum "
                        f"verification",
                        segment=self.name,
                        page=page_no,
                        expected=stored,
                        actual=computed,
                    )
        self._stats.record_physical_read(self.name, pages=count)
        if self._stats.trace_hook is not None:
            for page_no in range(start, start + count):
                self._stats.trace_hook(self.name, page_no)
        return bytes(buf)

    def write_page(self, page_no: int, data: bytes | bytearray) -> None:
        """Write page ``page_no`` to disk (a *physical write*).

        Under the v2 format the image is sealed — its crc32 trailer
        stamped — before it leaves this method (the caller's buffer is
        not mutated).  When a write-ahead log is attached (:attr:`wal`),
        the sealed image is appended to the log before the in-place
        write, so WAL replay restores verifiable pages.
        """
        self._check_open()
        self._check_range(page_no)
        if len(data) != self.page_size:
            raise StorageError(
                f"{self.name}: page payload is {len(data)} bytes, "
                f"expected {self.page_size}",
                path=str(self._path),
                page=page_no,
            )
        image = bytearray(data)
        if self.checksums:
            seal_page(image)
        if self.wal is not None:
            self.wal.log_page(self.name, page_no, bytes(image))
        try:
            os.pwrite(self._fd, bytes(image), page_no * self.page_size)
        except OSError as exc:
            raise StorageError(
                f"{self.name}: write of page {page_no} failed: {exc}",
                path=str(self._path),
                page=page_no,
            ) from exc
        self._stats.record_physical_write(self.name)

    def sync(self) -> None:
        """fsync the file."""
        self._check_open()
        try:
            os.fsync(self._fd)
        except OSError as exc:
            raise StorageError(
                f"{self.name}: fsync failed: {exc}", path=str(self._path)
            ) from exc

    # -- checks ----------------------------------------------------------------------

    def _record_crc_failure(self) -> None:
        with self._crc_lock:
            self._crc_failures += 1
        if self.metrics is not None:
            self.metrics.counter("storage.crc_failures").inc()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.name}: pager is closed")

    def _check_range(self, page_no: int) -> None:
        # reprolint: disable=R1 single-writer allocation; racy read tolerated
        if not 0 <= page_no < self._n_pages:
            raise StorageError(
                f"{self.name}: page {page_no} out of range "
                f"0..{self._n_pages - 1}"  # reprolint: disable=R1 single-writer
            )
