"""Page-based storage substrate (the reproduction's "Oracle").

Layers, bottom up:

* :class:`~repro.storage.pager.Pager` — raw page I/O over one file,
  recording physical reads/writes;
* :class:`~repro.storage.buffer.BufferPool` — shared LRU cache with
  write-back; flushing it before a query reproduces the paper's cold
  measurement methodology;
* :class:`~repro.storage.database.Database` /
  :class:`~repro.storage.database.Segment` — the directory-of-segments
  facade used by heap files and indexes;
* :class:`~repro.storage.heapfile.HeapFile` — variable-length records
  with RID addressing on slotted pages;
* :mod:`repro.storage.record` — PM / DM node codecs;
* :class:`~repro.storage.stats.DiskStats` — the disk-access counters
  standing in for Oracle's performance statistics report;
* :mod:`repro.storage.integrity` — page checksum scrub / repair /
  quarantine (``python -m repro fsck``).
"""

from repro.storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.database import Database, Segment
from repro.storage.faults import FaultInjector
from repro.storage.heapfile import HeapFile, pack_rid, unpack_rid
from repro.storage.integrity import (
    FsckReport,
    OrphanSegment,
    PageFault,
    PageQuarantine,
    archive_pages,
    inject_corruption,
    repair_database,
    scrub_database,
)
from repro.storage.page import (
    CHECKSUM_SIZE,
    DEFAULT_PAGE_SIZE,
    PAGE_FORMAT_V1,
    PAGE_FORMAT_V2,
    SlottedPage,
    seal_page,
    verify_page,
)
from repro.storage.pager import Pager
from repro.storage.record import (
    DMNodeRecord,
    PM_RECORD_SIZE,
    decode_dm_node,
    decode_pm_node,
    dm_record_size,
    encode_dm_node,
    encode_pm_node,
)
from repro.storage.stats import DiskStats, StatsSnapshot
from repro.storage.trace import IOTrace, IOTracer
from repro.storage.varint import decode_id_list, encode_id_list
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferPool",
    "CHECKSUM_SIZE",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_PAGES",
    "DMNodeRecord",
    "Database",
    "DiskStats",
    "FaultInjector",
    "FsckReport",
    "HeapFile",
    "IOTrace",
    "IOTracer",
    "OrphanSegment",
    "PAGE_FORMAT_V1",
    "PAGE_FORMAT_V2",
    "PM_RECORD_SIZE",
    "PageFault",
    "PageQuarantine",
    "Pager",
    "Segment",
    "SlottedPage",
    "StatsSnapshot",
    "WriteAheadLog",
    "archive_pages",
    "decode_dm_node",
    "decode_id_list",
    "decode_pm_node",
    "dm_record_size",
    "encode_id_list",
    "encode_dm_node",
    "encode_pm_node",
    "inject_corruption",
    "pack_rid",
    "repair_database",
    "scrub_database",
    "seal_page",
    "unpack_rid",
    "verify_page",
]
