"""Page-based storage substrate (the reproduction's "Oracle").

Layers, bottom up:

* :class:`~repro.storage.pager.Pager` — raw page I/O over one file,
  recording physical reads/writes;
* :class:`~repro.storage.buffer.BufferPool` — shared LRU cache with
  write-back; flushing it before a query reproduces the paper's cold
  measurement methodology;
* :class:`~repro.storage.database.Database` /
  :class:`~repro.storage.database.Segment` — the directory-of-segments
  facade used by heap files and indexes;
* :class:`~repro.storage.heapfile.HeapFile` — variable-length records
  with RID addressing on slotted pages;
* :mod:`repro.storage.record` — PM / DM node codecs;
* :class:`~repro.storage.stats.DiskStats` — the disk-access counters
  standing in for Oracle's performance statistics report.
"""

from repro.storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.database import Database, Segment
from repro.storage.faults import FaultInjector
from repro.storage.heapfile import HeapFile, pack_rid, unpack_rid
from repro.storage.page import DEFAULT_PAGE_SIZE, SlottedPage
from repro.storage.pager import Pager
from repro.storage.record import (
    DMNodeRecord,
    PM_RECORD_SIZE,
    decode_dm_node,
    decode_pm_node,
    dm_record_size,
    encode_dm_node,
    encode_pm_node,
)
from repro.storage.stats import DiskStats, StatsSnapshot
from repro.storage.trace import IOTrace, IOTracer
from repro.storage.varint import decode_id_list, encode_id_list
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_PAGES",
    "DMNodeRecord",
    "Database",
    "DiskStats",
    "FaultInjector",
    "HeapFile",
    "IOTrace",
    "IOTracer",
    "PM_RECORD_SIZE",
    "Pager",
    "Segment",
    "SlottedPage",
    "StatsSnapshot",
    "WriteAheadLog",
    "decode_dm_node",
    "decode_id_list",
    "decode_pm_node",
    "dm_record_size",
    "encode_id_list",
    "encode_dm_node",
    "encode_pm_node",
    "pack_rid",
    "unpack_rid",
]
