"""Per-query I/O tracing and access-pattern analysis.

Disk-access *counts* (the paper's metric) treat every page read alike,
but real disks reward sequential access.  The tracer records the exact
sequence of ``(segment, page)`` physical reads during a query so the
benchmark suite can characterise each method's access pattern —
e.g. HDoV's long sequential version scans versus PM's scattered
B+-tree chasing — adding texture the paper's single number hides.

Usage::

    tracer = IOTracer.attach(database.stats)
    run_query()
    trace = tracer.detach()
    print(trace.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.stats import DiskStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = ["IOTracer", "IOTrace"]


@dataclass
class IOTrace:
    """A recorded sequence of physical page reads."""

    reads: list[tuple[str, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.reads)

    @property
    def distinct_pages(self) -> int:
        """Unique ``(segment, page)`` pairs touched."""
        return len(set(self.reads))

    def runs(self) -> list[int]:
        """Lengths of maximal sequential runs (same segment,
        consecutive ascending page numbers)."""
        if not self.reads:
            return []
        lengths = []
        run = 1
        for (seg_a, page_a), (seg_b, page_b) in zip(
            self.reads, self.reads[1:]
        ):
            if seg_b == seg_a and page_b == page_a + 1:
                run += 1
            else:
                lengths.append(run)
                run = 1
        lengths.append(run)
        return lengths

    @property
    def sequentiality(self) -> float:
        """Fraction of reads that continue a sequential run (0..1)."""
        if len(self.reads) <= 1:
            return 0.0
        sequential = len(self.reads) - len(self.runs())
        return sequential / (len(self.reads) - 1)

    def by_segment(self) -> dict[str, int]:
        """Read counts per segment."""
        counts: dict[str, int] = {}
        for segment, _ in self.reads:
            counts[segment] = counts.get(segment, 0) + 1
        return counts

    def summary(self) -> str:
        """A short human-readable description of the pattern."""
        runs = self.runs()
        longest = max(runs) if runs else 0
        segments = ", ".join(
            f"{name}={count}" for name, count in sorted(self.by_segment().items())
        )
        return (
            f"{len(self.reads)} reads, {self.distinct_pages} distinct, "
            f"sequentiality {self.sequentiality:.0%}, "
            f"longest run {longest} ({segments})"
        )


class IOTracer:
    """Records the pager's physical-read sequence via
    :attr:`DiskStats.trace_hook`.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is supplied,
    every read also increments the per-segment counter
    ``io.reads.<segment>`` there, so traces and engine metrics land in
    one report.
    """

    def __init__(
        self, stats: DiskStats, registry: "MetricsRegistry | None" = None
    ) -> None:
        self._stats = stats
        self._registry = registry
        self._attached = False
        self.trace = IOTrace()

    @classmethod
    def attach(
        cls, stats: DiskStats, registry: "MetricsRegistry | None" = None
    ) -> "IOTracer":
        """Start recording physical reads on ``stats``.

        Only one tracer may be attached at a time.
        """
        if stats.trace_hook is not None:
            raise StorageError("a tracer is already attached")
        tracer = cls(stats, registry)
        # Bind once: bound-method expressions create fresh objects per
        # access, which would defeat identity checks at detach time.
        tracer._hook = tracer._on_read
        stats.trace_hook = tracer._hook
        tracer._attached = True
        return tracer

    def _on_read(self, segment: str, page_no: int) -> None:
        self.trace.reads.append((segment, page_no))
        if self._registry is not None:
            self._registry.counter(f"io.reads.{segment}").inc()

    def detach(self) -> IOTrace:
        """Stop recording and return the trace."""
        if not self._attached:
            raise StorageError("tracer was not attached")
        if self._stats.trace_hook is self._hook:
            self._stats.trace_hook = None
        self._attached = False
        return self.trace

    def __enter__(self) -> "IOTracer":
        return self

    def __exit__(self, *exc: object) -> None:
        if self._attached:
            self.detach()
