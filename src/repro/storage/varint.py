"""Variable-length integer coding for compressed connection lists.

The paper's reference [2] (Danovaro et al., *Compressing
multiresolution triangle meshes*) motivates compressing MTM topology.
As an optional extension, Direct Mesh records can store their
similar-LOD connection lists **delta + varint** coded: the list is
sorted, gaps between consecutive ids are usually small relative to the
id space, and LEB128-style varints shrink them further.  The ablation
benchmark quantifies the heap-size and disk-access effect.

Encoding: unsigned LEB128 (7 bits per byte, high bit = continuation);
signed values use zigzag mapping first.
"""

from __future__ import annotations

from repro.errors import RecordError

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "zigzag",
    "unzigzag",
    "encode_id_list",
    "decode_id_list",
]


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` (non-negative) to ``out`` as LEB128."""
    if value < 0:
        raise RecordError(f"uvarint cannot encode negative {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one LEB128 value; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise RecordError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise RecordError("varint too long")


def zigzag(value: int) -> int:
    """Map a signed integer to unsigned (0, -1, 1, -2 -> 0, 1, 2, 3)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_id_list(ids: list[int]) -> bytes:
    """Delta + varint encode a list of non-negative ids.

    The list is sorted first (connection lists are sets; order carries
    no information), so all deltas after the first are positive.
    """
    out = bytearray()
    encode_uvarint(len(ids), out)
    previous = 0
    for value in sorted(ids):
        if value < 0:
            raise RecordError(f"id lists must be non-negative, got {value}")
        encode_uvarint(value - previous, out)
        previous = value
    return bytes(out)


def decode_id_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a delta + varint id list; returns ``(ids, next_offset)``."""
    count, offset = decode_uvarint(data, offset)
    ids: list[int] = []
    current = 0
    for _ in range(count):
        delta, offset = decode_uvarint(data, offset)
        current += delta
        ids.append(current)
    return ids, offset
