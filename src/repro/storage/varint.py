"""Variable-length integer coding for compressed connection lists
and the delta-session wire format.

The paper's reference [2] (Danovaro et al., *Compressing
multiresolution triangle meshes*) motivates compressing MTM topology.
As an optional extension, Direct Mesh records can store their
similar-LOD connection lists **delta + varint** coded: the list is
sorted, gaps between consecutive ids are usually small relative to the
id space, and LEB128-style varints shrink them further.  The ablation
benchmark quantifies the heap-size and disk-access effect.  The same
primitives carry the progressive-transmission delta frames of
:mod:`repro.core.wire`.

Encoding: unsigned LEB128 (7 bits per byte, high bit = continuation);
signed values use zigzag mapping first.

Supported range
---------------
The wire format is **64-bit**.  :func:`encode_uvarint` accepts values
in ``[0, 2**64)`` — at most 10 bytes on the wire — and
:func:`decode_uvarint` rejects both encodings longer than 10 bytes and
decoded values past ``2**64 - 1``.  Python ints are arbitrary
precision, so without the explicit bound a malformed (or adversarial)
stream would silently decode to an id no fixed-width peer could ever
re-encode.  :func:`zigzag` is the standard bijection between the
signed range ``[-2**63, 2**63)`` and the unsigned ``[0, 2**64)``; the
fixed-width idiom ``(v << 1) ^ (v >> 63)`` is *wrong* for Python ints
(``v >> 63`` is not a sign smear once ``v >= 2**63``), so the branchy
form below is the one that round-trips the whole range.
"""

from __future__ import annotations

from repro.errors import RecordError

__all__ = [
    "U64_MAX",
    "encode_uvarint",
    "decode_uvarint",
    "zigzag",
    "unzigzag",
    "encode_id_list",
    "decode_id_list",
]

#: Largest value the varint wire format carries: ``2**64 - 1``.
U64_MAX = (1 << 64) - 1

#: A u64 needs ceil(64 / 7) = 10 LEB128 bytes; the 10th byte starts at
#: bit 63.  Any continuation past that is an overlong encoding.
_MAX_SHIFT = 63


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append ``value`` (in ``[0, 2**64)``) to ``out`` as LEB128."""
    if value < 0:
        raise RecordError(f"uvarint cannot encode negative {value}")
    if value > U64_MAX:
        raise RecordError(
            f"uvarint supports [0, 2**64), got {value}"
        )
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode one LEB128 value; returns ``(value, next_offset)``.

    Rejects truncated input, encodings longer than 10 bytes, and
    decoded values past ``2**64 - 1`` (e.g. a 10-byte encoding whose
    final byte sets bits above 63).
    """
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise RecordError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if result > U64_MAX:
                raise RecordError(
                    f"varint decodes past the u64 range: {result}"
                )
            return result, offset
        shift += 7
        if shift > _MAX_SHIFT:
            raise RecordError("varint too long")


def zigzag(value: int) -> int:
    """Map signed ``[-2**63, 2**63)`` to unsigned (0, -1, 1 -> 0, 1, 2)."""
    if not -(1 << 63) <= value < (1 << 63):
        raise RecordError(
            f"zigzag supports [-2**63, 2**63), got {value}"
        )
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag` (accepts ``[0, 2**64)``)."""
    if not 0 <= value <= U64_MAX:
        raise RecordError(
            f"unzigzag supports [0, 2**64), got {value}"
        )
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def encode_id_list(ids: list[int]) -> bytes:
    """Delta + varint encode a list of ids in ``[0, 2**64)``.

    The list is sorted first (connection lists are sets; order carries
    no information), so all deltas after the first are positive.
    """
    out = bytearray()
    encode_uvarint(len(ids), out)
    previous = 0
    for value in sorted(ids):
        if value < 0:
            raise RecordError(f"id lists must be non-negative, got {value}")
        encode_uvarint(value - previous, out)
        previous = value
    return bytes(out)


def decode_id_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a delta + varint id list; returns ``(ids, next_offset)``."""
    count, offset = decode_uvarint(data, offset)
    ids: list[int] = []
    current = 0
    for _ in range(count):
        delta, offset = decode_uvarint(data, offset)
        current += delta
        if current > U64_MAX:
            raise RecordError(
                f"id list delta overflows the u64 range: {current}"
            )
        ids.append(current)
    return ids, offset
