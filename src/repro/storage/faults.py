"""Deterministic fault injection for the storage substrate.

Production serving must survive the storage layer misbehaving; this
module makes the misbehaviour *testable*.  A :class:`FaultInjector`
plugs into :class:`~repro.storage.pager.Pager` (physical reads) and
:class:`~repro.storage.buffer.BufferPool` (buffer fetches) and, with
seedable pseudo-randomness, injects

* **transient read errors** — :class:`~repro.errors.TransientIOError`,
  the retryable failure class the query engine's retry loop is built
  around;
* **latency spikes** — an extra sleep on a fraction of reads,
  emulating a device hiccup (the sleep releases the GIL, like real
  I/O); and
* **page corruption** — in-flight mutation of page bytes at the sites
  ``corrupt.bitflip`` (one flipped bit), ``corrupt.torn`` (a torn
  write: the page tail zeroed from a random cut) and ``corrupt.zero``
  (the whole page zeroed).  Under the v2 page format the pager's
  checksum then fails the read with
  :class:`~repro.errors.PageCorruptionError` — the *non*-retryable
  counterpart the quarantine path is built around.

Determinism: the decision sequence is a pure function of the seed and
the order of calls, so a single-threaded test replays identically.
Under a thread pool the per-call decisions are still drawn from one
seeded stream (guarded by a lock); only their assignment to threads
varies — aggregate counts stay reproducible in expectation and every
injected error is counted in :attr:`errors_injected` (corruptions in
:attr:`corruptions_injected`).

Usage::

    injector = FaultInjector(error_rate=0.05, corrupt_rate=0.02, seed=7)
    database.set_fault_injector(injector)
    ...
    print(injector.errors_injected, "faults over", injector.calls, "reads")
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import StorageError, TransientIOError
from repro.obs.lockwatch import watched_lock
from repro.storage.page import verify_page

__all__ = [
    "CORRUPTION_KINDS",
    "FaultInjector",
    "SimulatedCrash",
    "corrupt_buffer",
]

#: Supported page-corruption kinds (fault sites ``corrupt.<kind>``).
CORRUPTION_KINDS = ("bitflip", "torn", "zero")


class SimulatedCrash(BaseException):
    """A test-injected process death.

    Raised by crash-matrix kill hooks (see
    :attr:`repro.storage.wal.WriteAheadLog.kill_hook`) to abandon a
    transaction at an exact protocol point.  Derives from
    :class:`BaseException` — not :class:`Exception`, and deliberately
    not :class:`~repro.errors.ReproError` — so no recovery, retry, or
    cleanup handler in the library can swallow it: like a real
    ``kill -9``, it must unwind everything.  Context carries the kill
    event label.
    """

    def __init__(self, event: str = "") -> None:
        super().__init__(event)
        self.event = event


def corrupt_buffer(
    buffer: bytearray, kind: str, rng: random.Random
) -> None:
    """Mutate ``buffer`` in place with a ``kind`` corruption.

    The mutation is guaranteed to invalidate a sealed v2 page: in the
    pathological case where the random damage leaves the crc trailer
    consistent (e.g. a tear past every live byte), the first payload
    byte is flipped as well.
    """
    if kind not in CORRUPTION_KINDS:
        raise StorageError(
            f"unknown corruption kind {kind!r}; "
            f"expected one of {CORRUPTION_KINDS}"
        )
    if not buffer:
        raise StorageError("cannot corrupt an empty page buffer")
    if kind == "bitflip":
        bit = rng.randrange(len(buffer) * 8)
        buffer[bit // 8] ^= 1 << (bit % 8)
    elif kind == "torn":
        cut = rng.randrange(len(buffer))
        buffer[cut:] = bytes(len(buffer) - cut)
    else:  # zero
        buffer[:] = bytes(len(buffer))
    if verify_page(buffer):  # Damage landed harmlessly: force a mismatch.
        buffer[0] ^= 0xFF


class FaultInjector:
    """Seedable injector of transient storage faults.

    Args:
        error_rate: probability in ``[0, 1]`` that a read raises
            :class:`~repro.errors.TransientIOError`.
        latency_rate: probability in ``[0, 1]`` that a read sleeps for
            ``latency_s`` before proceeding.
        latency_s: duration of an injected latency spike in seconds.
        corrupt_rate: probability in ``[0, 1]`` that a physical page
            read has its bytes corrupted in flight (see
            :meth:`corrupt_page`).
        corrupt_kinds: the corruption kinds to draw from, a subset of
            :data:`CORRUPTION_KINDS`.
        seed: seeds the private PRNG; equal seeds replay equal
            decision sequences.
        max_errors: stop injecting *errors* after this many (latency
            spikes are unaffected); ``None`` means unbounded.  Useful
            for scripting "exactly one failure" scenarios.
        max_corruptions: stop corrupting pages after this many;
            ``None`` means unbounded.
    """

    def __init__(
        self,
        error_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        corrupt_rate: float = 0.0,
        corrupt_kinds: tuple[str, ...] = CORRUPTION_KINDS,
        seed: int = 0,
        max_errors: int | None = None,
        max_corruptions: int | None = None,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise StorageError(
                f"error_rate must be in [0, 1], got {error_rate}"
            )
        if not 0.0 <= latency_rate <= 1.0:
            raise StorageError(
                f"latency_rate must be in [0, 1], got {latency_rate}"
            )
        if latency_s < 0.0:
            raise StorageError(f"latency_s must be >= 0, got {latency_s}")
        if not 0.0 <= corrupt_rate <= 1.0:
            raise StorageError(
                f"corrupt_rate must be in [0, 1], got {corrupt_rate}"
            )
        if not corrupt_kinds or not set(corrupt_kinds) <= set(
            CORRUPTION_KINDS
        ):
            raise StorageError(
                f"corrupt_kinds must be a non-empty subset of "
                f"{CORRUPTION_KINDS}, got {corrupt_kinds}"
            )
        self.error_rate = error_rate
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.corrupt_rate = corrupt_rate
        self.corrupt_kinds = tuple(corrupt_kinds)
        self.max_errors = max_errors
        self.max_corruptions = max_corruptions
        self._seed = seed
        self._lock = watched_lock("FaultInjector._lock")
        self._rng = random.Random(seed)
        self.calls = 0
        self.errors_injected = 0
        self.latencies_injected = 0
        self.corruptions_injected = 0
        self.corruptions_by_kind: dict[str, int] = {}

    def reset(self, seed: int | None = None) -> None:
        """Zero the counters and restart the decision stream."""
        with self._lock:
            if seed is not None:
                self._seed = seed
            self._rng = random.Random(self._seed)
            self.calls = 0
            self.errors_injected = 0
            self.latencies_injected = 0
            self.corruptions_injected = 0
            self.corruptions_by_kind = {}

    def fire(self, site: str, detail: str = "") -> None:
        """Consult the injector at an instrumented read site.

        Either returns normally (possibly after an injected latency
        spike) or raises :class:`~repro.errors.TransientIOError`.
        ``site`` and ``detail`` only flavour the error message.
        """
        with self._lock:
            self.calls += 1
            fail = (
                self.error_rate > 0.0
                and (
                    self.max_errors is None
                    or self.errors_injected < self.max_errors
                )
                and self._rng.random() < self.error_rate
            )
            if fail:
                self.errors_injected += 1
            spike = (
                not fail
                and self.latency_rate > 0.0
                and self._rng.random() < self.latency_rate
            )
            if spike:
                self.latencies_injected += 1
        if fail:
            raise TransientIOError(
                f"injected transient fault at {site}"
                + (f" ({detail})" if detail else "")
            )
        if spike and self.latency_s > 0.0:
            time.sleep(self.latency_s)

    def corrupt_page(self, buffer: bytearray, detail: str = "") -> str | None:
        """Maybe corrupt a freshly read page image in place.

        Called by :meth:`~repro.storage.pager.Pager.read_page` after
        the bytes arrive and *before* checksum verification, so every
        corruption of a v2 page is caught by exactly one crc failure
        (``storage.crc_failures`` tracks :attr:`corruptions_injected`
        one to one).  Returns the corruption kind, or ``None`` when
        the page was left intact.
        """
        if self.corrupt_rate <= 0.0:
            return None
        with self._lock:
            if (
                self.max_corruptions is not None
                and self.corruptions_injected >= self.max_corruptions
            ):
                return None
            if self._rng.random() >= self.corrupt_rate:
                return None
            kind = self.corrupt_kinds[
                self._rng.randrange(len(self.corrupt_kinds))
            ]
            self.corruptions_injected += 1
            self.corruptions_by_kind[kind] = (
                self.corruptions_by_kind.get(kind, 0) + 1
            )
            # Mutate under the lock: the damage parameters come from
            # the shared PRNG stream, keeping replays deterministic.
            corrupt_buffer(buffer, kind, self._rng)
        return kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(error_rate={self.error_rate}, "
            # reprolint: disable=R1 debug repr tolerates a torn seed read
            f"latency_rate={self.latency_rate}, seed={self._seed}, "
            # reprolint: disable=R1 debug repr tolerates torn counters
            f"errors={self.errors_injected}/{self.calls}, "
            # reprolint: disable=R1 debug repr tolerates torn counters
            f"corruptions={self.corruptions_injected})"
        )
