"""Deterministic fault injection for the storage substrate.

Production serving must survive the storage layer misbehaving; this
module makes the misbehaviour *testable*.  A :class:`FaultInjector`
plugs into :class:`~repro.storage.pager.Pager` (physical reads) and
:class:`~repro.storage.buffer.BufferPool` (buffer fetches) and, with
seedable pseudo-randomness, injects

* **transient read errors** — :class:`~repro.errors.TransientIOError`,
  the retryable failure class the query engine's retry loop is built
  around; and
* **latency spikes** — an extra sleep on a fraction of reads,
  emulating a device hiccup (the sleep releases the GIL, like real
  I/O).

Determinism: the decision sequence is a pure function of the seed and
the order of calls, so a single-threaded test replays identically.
Under a thread pool the per-call decisions are still drawn from one
seeded stream (guarded by a lock); only their assignment to threads
varies — aggregate counts stay reproducible in expectation and every
injected error is counted in :attr:`errors_injected`.

Usage::

    injector = FaultInjector(error_rate=0.05, seed=7)
    database.set_fault_injector(injector)
    ...
    print(injector.errors_injected, "faults over", injector.calls, "reads")
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import StorageError, TransientIOError

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seedable injector of transient storage faults.

    Args:
        error_rate: probability in ``[0, 1]`` that a read raises
            :class:`~repro.errors.TransientIOError`.
        latency_rate: probability in ``[0, 1]`` that a read sleeps for
            ``latency_s`` before proceeding.
        latency_s: duration of an injected latency spike in seconds.
        seed: seeds the private PRNG; equal seeds replay equal
            decision sequences.
        max_errors: stop injecting *errors* after this many (latency
            spikes are unaffected); ``None`` means unbounded.  Useful
            for scripting "exactly one failure" scenarios.
    """

    def __init__(
        self,
        error_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        seed: int = 0,
        max_errors: int | None = None,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise StorageError(
                f"error_rate must be in [0, 1], got {error_rate}"
            )
        if not 0.0 <= latency_rate <= 1.0:
            raise StorageError(
                f"latency_rate must be in [0, 1], got {latency_rate}"
            )
        if latency_s < 0.0:
            raise StorageError(f"latency_s must be >= 0, got {latency_s}")
        self.error_rate = error_rate
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.max_errors = max_errors
        self._seed = seed
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self.calls = 0
        self.errors_injected = 0
        self.latencies_injected = 0

    def reset(self, seed: int | None = None) -> None:
        """Zero the counters and restart the decision stream."""
        with self._lock:
            if seed is not None:
                self._seed = seed
            self._rng = random.Random(self._seed)
            self.calls = 0
            self.errors_injected = 0
            self.latencies_injected = 0

    def fire(self, site: str, detail: str = "") -> None:
        """Consult the injector at an instrumented read site.

        Either returns normally (possibly after an injected latency
        spike) or raises :class:`~repro.errors.TransientIOError`.
        ``site`` and ``detail`` only flavour the error message.
        """
        with self._lock:
            self.calls += 1
            fail = (
                self.error_rate > 0.0
                and (
                    self.max_errors is None
                    or self.errors_injected < self.max_errors
                )
                and self._rng.random() < self.error_rate
            )
            if fail:
                self.errors_injected += 1
            spike = (
                not fail
                and self.latency_rate > 0.0
                and self._rng.random() < self.latency_rate
            )
            if spike:
                self.latencies_injected += 1
        if fail:
            raise TransientIOError(
                f"injected transient fault at {site}"
                + (f" ({detail})" if detail else "")
            )
        if spike and self.latency_s > 0.0:
            time.sleep(self.latency_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(error_rate={self.error_rate}, "
            # reprolint: disable=R1 debug repr tolerates a torn seed read
            f"latency_rate={self.latency_rate}, seed={self._seed}, "
            f"errors={self.errors_injected}/{self.calls})"
        )
