"""Disk-access statistics — the reproduction's measurement instrument.

The paper measures "the number of disk accesses (obtained from Oracle's
performance statistics report)" with the database buffer flushed before
each test.  This module provides the equivalent: every page read or
write anywhere in the storage engine is recorded here, attributed to
the segment (table/index file) it touched.

* A **physical read** is a page fetched from the underlying file
  because it was not in the buffer pool — the paper's *disk access*.
* A **logical read** is any page request, hit or miss.

Use :meth:`DiskStats.measure` to scope counters to one query.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.lockwatch import watched_lock

__all__ = ["AccessProbe", "DiskStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable counter snapshot (totals and per-segment)."""

    physical_reads: int
    physical_writes: int
    logical_reads: int
    by_segment: dict[str, dict[str, int]]

    @property
    def disk_accesses(self) -> int:
        """The paper's DA metric: physical page reads."""
        return self.physical_reads

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """Counters accumulated since ``earlier``."""
        segments: dict[str, dict[str, int]] = {}
        names = set(self.by_segment) | set(earlier.by_segment)
        for name in names:
            now = self.by_segment.get(name, {})
            before = earlier.by_segment.get(name, {})
            seg = {
                key: now.get(key, 0) - before.get(key, 0)
                for key in ("physical_reads", "physical_writes", "logical_reads")
            }
            if any(seg.values()):
                segments[name] = seg
        return StatsSnapshot(
            self.physical_reads - earlier.physical_reads,
            self.physical_writes - earlier.physical_writes,
            self.logical_reads - earlier.logical_reads,
            segments,
        )

    def report(self) -> str:
        """A human-readable statistics report (Oracle-style)."""
        lines = [
            "statistics report",
            "-----------------",
            f"physical reads : {self.physical_reads}",
            f"physical writes: {self.physical_writes}",
            f"logical reads  : {self.logical_reads}",
        ]
        if self.by_segment:
            lines.append("per segment:")
            for name in sorted(self.by_segment):
                seg = self.by_segment[name]
                lines.append(
                    f"  {name:<24} pr={seg.get('physical_reads', 0):<8}"
                    f" pw={seg.get('physical_writes', 0):<8}"
                    f" lr={seg.get('logical_reads', 0)}"
                )
        return "\n".join(lines)


@dataclass
class AccessProbe:
    """Per-thread page-access tally (see :meth:`DiskStats.attribute`).

    Only the thread that entered the ``attribute()`` scope updates its
    probe, so reads and writes here need no locking.
    """

    physical_reads: int = 0
    physical_writes: int = 0
    logical_reads: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Buffer hit fraction: ``1 - physical/logical`` (0 if idle)."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads


class DiskStats:
    """Mutable counters shared by all storage components of a database.

    Updates are thread-safe: the query engine fans requests out across
    a thread pool against one shared buffer pool, and every worker's
    page traffic lands here.  Per-thread attribution — "how many pages
    did *this* query touch while others ran concurrently" — is scoped
    with :meth:`attribute`.
    """

    def __init__(self) -> None:
        self._lock = watched_lock("DiskStats._lock")
        self._local = threading.local()
        self._physical_reads = 0
        self._physical_writes = 0
        self._logical_reads = 0
        self._by_segment: dict[str, dict[str, int]] = {}
        #: Optional callable ``(segment, page_no)`` invoked on every
        #: physical read — used by :class:`repro.storage.trace.IOTracer`.
        self.trace_hook: Callable[[str, int], None] | None = None

    # -- recording (called by the pager / buffer pool) -------------------

    def record_physical_read(self, segment: str, pages: int = 1) -> None:
        """Count ``pages`` physical page reads against ``segment``."""
        with self._lock:
            self._physical_reads += pages
            self._segment_locked(segment)["physical_reads"] += pages
        probe = getattr(self._local, "probe", None)
        if probe is not None:
            probe.physical_reads += pages

    def record_physical_write(self, segment: str, pages: int = 1) -> None:
        """Count ``pages`` physical page writes against ``segment``."""
        with self._lock:
            self._physical_writes += pages
            self._segment_locked(segment)["physical_writes"] += pages
        probe = getattr(self._local, "probe", None)
        if probe is not None:
            probe.physical_writes += pages

    def record_logical_read(self, segment: str, pages: int = 1) -> None:
        """Count ``pages`` buffer requests against ``segment``."""
        with self._lock:
            self._logical_reads += pages
            self._segment_locked(segment)["logical_reads"] += pages
        probe = getattr(self._local, "probe", None)
        if probe is not None:
            probe.logical_reads += pages

    @contextmanager
    def attribute(self) -> Iterator[AccessProbe]:
        """Attribute page accesses made by *the calling thread* inside
        the scope to a fresh :class:`AccessProbe`::

            with stats.attribute() as probe:
                run_query()
            print(probe.physical_reads, probe.cache_hit_rate)

        Unlike :meth:`measure`, which reads the global counters and is
        polluted by concurrent activity, the probe sees only the
        current thread's traffic, so per-query metrics stay accurate
        under the concurrent engine.  Scopes do not nest.
        """
        probe = AccessProbe()
        self._local.probe = probe
        try:
            yield probe
        finally:
            self._local.probe = None

    def _segment_locked(self, name: str) -> dict[str, int]:
        # ``_locked`` suffix: callers hold ``self._lock`` (reprolint R1).
        bucket = self._by_segment.get(name)
        if bucket is None:
            bucket = {
                "physical_reads": 0,
                "physical_writes": 0,
                "logical_reads": 0,
            }
            self._by_segment[name] = bucket
        return bucket

    # -- reading -----------------------------------------------------------

    @property
    def physical_reads(self) -> int:
        """Total physical page reads since construction or reset."""
        with self._lock:
            return self._physical_reads

    @property
    def physical_writes(self) -> int:
        """Total physical page writes."""
        with self._lock:
            return self._physical_writes

    @property
    def logical_reads(self) -> int:
        """Total buffer page requests."""
        with self._lock:
            return self._logical_reads

    def snapshot(self) -> StatsSnapshot:
        """An immutable copy of all counters."""
        with self._lock:
            return StatsSnapshot(
                self._physical_reads,
                self._physical_writes,
                self._logical_reads,
                {name: dict(seg) for name, seg in self._by_segment.items()},
            )

    def reset(self) -> None:
        """Zero every counter."""
        with self._lock:
            self._physical_reads = 0
            self._physical_writes = 0
            self._logical_reads = 0
            self._by_segment.clear()

    @contextmanager
    def measure(self) -> Iterator["_Measurement"]:
        """Scope counters to a block::

            with stats.measure() as m:
                run_query()
            print(m.result.disk_accesses)
        """
        measurement = _Measurement(self.snapshot())
        try:
            yield measurement
        finally:
            measurement._finish(self.snapshot())


class _Measurement:
    """Holder for a scoped measurement; ``result`` is set on exit."""

    def __init__(self, before: StatsSnapshot) -> None:
        self._before = before
        self.result: StatsSnapshot | None = None

    def _finish(self, after: StatsSnapshot) -> None:
        self.result = after.delta(self._before)
