"""The database facade: a directory of segments behind one buffer pool.

A :class:`Database` stands in for the paper's Oracle instance: it owns
the shared :class:`~repro.storage.stats.DiskStats`, the
:class:`~repro.storage.buffer.BufferPool`, and one
:class:`~repro.storage.pager.Pager` per *segment* (a table or index
file).  Higher layers (heap files, B+-trees, spatial indexes) operate
on :class:`Segment` handles, which route all page traffic through the
buffer pool so that disk-access accounting is uniform.

**Page formats.**  The directory carries a ``storage_meta.json`` flag
recording the page format: v2 (the default for new databases) seals
every page with a crc32 trailer verified on read; v1 is the historical
unchecksummed layout.  A directory with segment files but no flag is a
legacy v1 database and keeps working unchanged — reads are never
verified and the full page is usable.  Layout code must size itself to
:attr:`Segment.payload_size`, which is ``page_size`` minus the trailer
under v2 and the full page under v1.
"""

from __future__ import annotations

import json
import os
import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import StorageError
from repro.storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_FORMAT_V1,
    PAGE_FORMAT_V2,
)
from repro.storage.pager import Pager
from repro.storage.stats import DiskStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.faults import FaultInjector

__all__ = [
    "Database",
    "Segment",
    "STORAGE_META_FILENAME",
    "epoch_prefix",
    "parse_epoch_segment",
]

#: Sidecar file recording the database's page format.
STORAGE_META_FILENAME = "storage_meta.json"


def epoch_prefix(prefix: str, epoch: int) -> str:
    """The physical segment prefix of a store ``prefix`` at ``epoch``.

    Epoch 0 is the plain prefix (``dm_nodes``, ...), so stores that are
    never mutated keep their historical file names; later epochs live
    in shadow segments (``dm@2_nodes``, ...) staged by the patch path.
    """
    if epoch < 0:
        raise StorageError(f"epoch must be >= 0, got {epoch}")
    return prefix if epoch == 0 else f"{prefix}@{epoch}"


def parse_epoch_segment(name: str) -> tuple[str, int] | None:
    """Split ``dm@3_nodes`` into ``("dm", 3)``; ``None`` for epoch-0 names.

    The inverse of :func:`epoch_prefix` over segment *names*: returns
    the logical store prefix and epoch of an epoch-suffixed name, or
    ``None`` when the name carries no epoch marker.  ``fsck`` uses it
    to find staged segments whose epoch was never committed.
    """
    base, sep, rest = name.rpartition("@")
    if not sep:
        return None
    tag, sep, _ = rest.partition("_")
    if not sep or not tag.isdigit():
        return None
    return base, int(tag)


class Segment:
    """Buffered page access to one file, with statistics attribution."""

    def __init__(self, pager: Pager, buffer: BufferPool) -> None:
        self._pager = pager
        self._buffer = buffer

    @property
    def name(self) -> str:
        """Segment name (statistics key)."""
        return self._pager.name

    @property
    def page_size(self) -> int:
        """Bytes per page on disk (including any checksum trailer)."""
        return self._pager.page_size

    @property
    def payload_size(self) -> int:
        """Bytes per page usable by layout code (see
        :attr:`repro.storage.pager.Pager.payload_size`)."""
        return self._pager.payload_size

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._pager.n_pages

    def fetch(self, page_no: int) -> bytearray:
        """The (cached) buffer for ``page_no``."""
        return self._buffer.fetch(self._pager, page_no)

    def read_raw(self, page_no: int) -> bytearray:
        """Read ``page_no`` from disk, bypassing the buffer pool.

        Always performs (and verifies, under v2) a physical read — the
        scrub path: ``fsck`` must look at what is *on disk*, not at a
        warm frame, and must not pollute the pool while doing so.
        """
        return self._pager.read_page(page_no)

    def read_run(self, start: int, count: int) -> bytes:
        """Read a contiguous page run, bypassing the buffer pool.

        One sequential physical transfer (see
        :meth:`repro.storage.pager.Pager.read_pages`) accounted as
        ``count`` pages read, with the checksum trailers stripped so
        the result is the concatenated page payloads.  The cluster
        fast path reads whole cluster runs this way: decoded clusters
        live in the cluster cache, so routing the bytes through the
        page-granular pool would only evict pages other access paths
        still need.  Callers must only read runs that are clean on
        disk (the builders flush before serving).

        Each page still counts as one *logical* read — the request
        happened, it just can never be a buffer hit — so the global
        ``logical >= physical`` invariant and per-probe hit rates stay
        truthful for mixed workloads.
        """
        self._pager.stats.record_logical_read(self._pager.name, pages=count)
        raw = self._pager.read_pages(start, count)
        page_size = self._pager.page_size
        payload = self._pager.payload_size
        if payload == page_size:
            return raw
        return b"".join(
            raw[i * page_size:i * page_size + payload]
            for i in range(count)
        )

    def allocate(self) -> tuple[int, bytearray]:
        """Allocate a new page; returns ``(page_no, buffer)``.

        The returned buffer is resident and already marked dirty.
        """
        page_no = self._pager.allocate()
        data = bytearray(self._pager.page_size)
        self._buffer.put_new(self._pager, page_no, data)
        return page_no, data

    def write_page_image(self, page_no: int, data: bytes | bytearray) -> None:
        """Write a full page image straight through the pager.

        The recovery/repair path: never read-modify-write (the target
        page may be torn or corrupt), and drop any cached frame so a
        stale buffer cannot overwrite the restored image later.
        """
        self._buffer.drop(self._pager, page_no)
        self._pager.write_page(page_no, data)

    def mark_dirty(self, page_no: int) -> None:
        """Flag a fetched page as modified."""
        self._buffer.mark_dirty(self._pager, page_no)


class Database:
    """A directory-backed collection of segments.

    Args:
        path: directory for the segment files (created if missing).
        pool_pages: buffer pool capacity in pages.
        page_size: page size for all segments.
        overwrite: if true, delete any existing directory contents.
        io_latency: simulated per-physical-read device latency in
            seconds (see :attr:`repro.storage.pager.Pager.io_latency`);
            0 disables it.
        fault_injector: a :class:`~repro.storage.faults.FaultInjector`
            installed on every segment's physical-read path (see
            :meth:`set_fault_injector`); ``None`` disables injection.
        page_format: force a page format for a *new* database
            (:data:`~repro.storage.page.PAGE_FORMAT_V1` or
            :data:`~repro.storage.page.PAGE_FORMAT_V2`).  ``None``
            (the default) uses the on-disk flag of an existing
            database — legacy directories without a flag are v1 — and
            v2 for new ones.  Opening an existing database with a
            conflicting explicit format raises.
        recover: replay/discard a leftover write-ahead log on open
            (the default).  ``fsck`` opens with ``False`` to diagnose
            the directory exactly as the crash left it.
    """

    def __init__(
        self,
        path: str | Path,
        pool_pages: int = DEFAULT_POOL_PAGES,
        page_size: int = DEFAULT_PAGE_SIZE,
        overwrite: bool = False,
        io_latency: float = 0.0,
        fault_injector: "FaultInjector | None" = None,
        page_format: int | None = None,
        recover: bool = True,
    ) -> None:
        self.path = Path(path)
        if overwrite and self.path.exists():
            shutil.rmtree(self.path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.page_size = page_size
        self.page_format = self._resolve_page_format(page_format)
        self.checksums = self.page_format >= PAGE_FORMAT_V2
        self.stats = DiskStats()
        self.buffer = BufferPool(self.stats, pool_pages)
        self._io_latency = io_latency
        self._fault_injector = fault_injector
        self._metrics: "MetricsRegistry | None" = None
        self._pagers: dict[str, Pager] = {}
        self._closed = False
        self._wal = None
        if recover:
            self._recover_if_needed()

    def _resolve_page_format(self, requested: int | None) -> int:
        """Determine the page format, writing the flag for new dbs."""
        if requested is not None and requested not in (
            PAGE_FORMAT_V1,
            PAGE_FORMAT_V2,
        ):
            raise StorageError(
                f"unknown page format {requested}",
                path=str(self.path),
            )
        meta_path = self.path / STORAGE_META_FILENAME
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                on_disk = int(meta["page_format"])
                meta_page_size = int(meta.get("page_size", self.page_size))
            except (ValueError, KeyError, TypeError) as exc:
                raise StorageError(
                    f"unreadable storage metadata: {exc}",
                    path=str(meta_path),
                ) from exc
            if requested is not None and requested != on_disk:
                raise StorageError(
                    f"database is page format v{on_disk}, "
                    f"but v{requested} was requested",
                    path=str(self.path),
                )
            if meta_page_size != self.page_size:
                raise StorageError(
                    f"database was built with page_size "
                    f"{meta_page_size}, opened with {self.page_size}",
                    path=str(self.path),
                )
            return on_disk
        if any(self.path.glob("*.seg")):
            # Legacy database (pre-dates the format flag): its pages
            # carry no checksum trailer and must be read as v1.
            if requested is not None and requested != PAGE_FORMAT_V1:
                raise StorageError(
                    "existing database has no storage metadata "
                    "(legacy v1); cannot open as v2",
                    path=str(self.path),
                )
            return PAGE_FORMAT_V1
        fmt = requested if requested is not None else PAGE_FORMAT_V2
        meta_path.write_text(
            json.dumps(
                {"page_format": fmt, "page_size": self.page_size},
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
        return fmt

    def _recover_if_needed(self) -> None:
        """Replay or discard a leftover write-ahead log on open."""
        from repro.storage.wal import WriteAheadLog

        if not WriteAheadLog.needs_recovery(self.path):
            return
        wal = WriteAheadLog(self.path, self.page_size)
        outcome = wal.recover(
            self.segment, on_patch_commit=self._apply_patch_flip
        )
        if outcome == "replayed":
            self.buffer.flush_dirty()
            for pager in self._pagers.values():
                pager.sync()

    def _apply_patch_flip(self, header: dict) -> None:
        """Re-apply a committed patch's epoch flip during recovery.

        Idempotent: the crash may have landed after the flip but
        before the log unlink, in which case the meta already points
        at ``to_epoch`` and this is a no-op rewrite.
        """
        self.set_store_epoch(str(header["prefix"]), int(header["to_epoch"]))

    # -- segments -----------------------------------------------------------

    def segment(self, name: str) -> Segment:
        """Open (creating if needed) the segment called ``name``."""
        self._check_open()
        pager = self._pagers.get(name)
        if pager is None:
            pager = Pager(
                self.path / f"{name}.seg",
                self.stats,
                name=name,
                page_size=self.page_size,
                checksums=self.checksums,
            )
            pager.wal = self._wal  # Join any active atomic scope.
            pager.io_latency = self._io_latency
            pager.fault_injector = self._fault_injector
            pager.metrics = self._metrics
            self._pagers[name] = pager
        return Segment(pager, self.buffer)

    @property
    def payload_size(self) -> int:
        """Usable bytes per page under the database's page format."""
        from repro.storage.page import CHECKSUM_SIZE

        if self.checksums:
            return self.page_size - CHECKSUM_SIZE
        return self.page_size

    @property
    def crc_failures(self) -> int:
        """Checksum mismatches across every open segment."""
        return sum(p.crc_failures for p in self._pagers.values())

    def set_io_latency(self, seconds: float) -> None:
        """Set the simulated read latency on every (current and
        future) segment."""
        self._io_latency = seconds
        for pager in self._pagers.values():
            pager.io_latency = seconds

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Install (or with ``None``, remove) a fault injector on every
        current and future segment's physical-read path.

        Injection happens in :meth:`Pager.read_page`, *below* the
        buffer pool: warm-cache fetches are unaffected, which is the
        realistic failure surface (cached pages cannot fail).  To also
        fault warm reads, set ``database.buffer.fault_injector``
        directly.
        """
        self._fault_injector = injector
        for pager in self._pagers.values():
            pager.fault_injector = injector

    def set_metrics_registry(
        self, registry: "MetricsRegistry | None"
    ) -> None:
        """Install (or with ``None``, remove) a metrics registry on
        every current and future segment.

        Today the pagers report only ``storage.crc_failures`` through
        it; the disk-access counters stay in :attr:`stats`.
        """
        self._metrics = registry
        for pager in self._pagers.values():
            pager.metrics = registry

    def has_segment(self, name: str) -> bool:
        """True if the segment file exists on disk."""
        return name in self._pagers or (self.path / f"{name}.seg").exists()

    def remove_segment(self, name: str) -> None:
        """Delete a segment file and forget all its cached state.

        Used to clear the stale staging of an aborted patch before
        re-staging the same target epoch: the pager is closed, every
        buffered frame dropped *without* write-back (a dirty frame
        would resurrect the file), and the file unlinked.  A no-op for
        a segment that does not exist.
        """
        self._check_open()
        pager = self._pagers.pop(name, None)
        if pager is not None:
            pager.close()
        self.buffer.drop_segment(name)
        path = self.path / f"{name}.seg"
        if path.exists():
            path.unlink()

    def segment_names(self) -> list[str]:
        """All segment files present in the database directory."""
        return sorted(p.stem for p in self.path.glob("*.seg"))

    def segment_pages(self, name: str) -> int:
        """Allocated page count of segment ``name``."""
        return self.segment(name)._pager.n_pages

    # -- test methodology helpers ---------------------------------------------

    def flush(self) -> None:
        """Write back and drop every buffered page (cold cache).

        Matches the paper's flush-before-each-test methodology.
        """
        self.buffer.flush()

    def begin_measured_query(self) -> None:
        """Flush the buffer and zero counters — call before each query."""
        self.flush()
        self.stats.reset()

    @property
    def disk_accesses(self) -> int:
        """Physical reads since the last reset (the paper's metric)."""
        return self.stats.physical_reads

    # -- store epochs --------------------------------------------------------

    def _read_meta(self) -> dict:
        meta_path = self.path / STORAGE_META_FILENAME
        if not meta_path.exists():
            # Legacy v1 directory: synthesise the flag the resolver
            # inferred so a meta rewrite cannot change the format.
            return {"page_format": self.page_format, "page_size": self.page_size}
        try:
            return dict(json.loads(meta_path.read_text(encoding="utf-8")))
        except ValueError as exc:
            raise StorageError(
                f"unreadable storage metadata: {exc}", path=str(meta_path)
            ) from exc

    def _write_meta(self, meta: dict) -> None:
        """Atomically replace ``storage_meta.json`` (tmp + rename).

        The epoch flip is the commit point of a patch transaction, so
        the rewrite must never leave a torn file: the new contents are
        fsynced under a temporary name, then renamed over the old file
        in one atomic step.
        """
        meta_path = self.path / STORAGE_META_FILENAME
        tmp_path = meta_path.with_suffix(".json.tmp")
        blob = json.dumps(meta, sort_keys=True) + "\n"
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, blob.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, meta_path)

    def store_epoch(self, prefix: str) -> int:
        """The committed epoch of store ``prefix`` (0 for never-patched)."""
        epochs = self._read_meta().get("epochs", {})
        if not isinstance(epochs, dict):
            raise StorageError(
                "storage metadata 'epochs' is not a mapping",
                path=str(self.path),
            )
        return int(epochs.get(prefix, 0))

    def set_store_epoch(self, prefix: str, epoch: int) -> None:
        """Commit the store-wide epoch flip for ``prefix``.

        This is the *only* mutation a reader can observe from a patch
        transaction: everything staged before it lives in shadow
        segments no epoch-pinned reader resolves, and the rewrite is
        atomic (see :meth:`_write_meta`), so a crash at any instant
        leaves the directory on exactly the pre- or post-patch epoch.
        """
        if epoch < 0:
            raise StorageError(f"epoch must be >= 0, got {epoch}")
        meta = self._read_meta()
        epochs = dict(meta.get("epochs", {}))
        epochs[prefix] = epoch
        meta["epochs"] = epochs
        self._write_meta(meta)

    # -- atomic multi-segment mutations -------------------------------------------

    @contextmanager
    def patch(
        self,
        header: dict,
        kill_hook: "Callable[[str], None] | None" = None,
    ) -> Iterator[None]:
        """Crash-safe scope for one live-patch transaction.

        Like :meth:`atomic`, every page write-back inside the scope is
        logged before it hits the segments — but the log is headed by
        a typed patch record (see :mod:`repro.storage.wal`) and sealed
        by a patch-commit marker, and on normal exit the scope also
        applies the store-wide **epoch flip** the header describes.
        The protocol, in order:

        1. ``begin_patch(header)`` — log header, attach to pagers;
        2. caller stages shadow segments for ``header["to_epoch"]``;
        3. flush dirty pages (each image logged first);
        4. patch-commit marker + fsync — the transaction is durable;
        5. fsync the staged segments;
        6. ``set_store_epoch`` — the flip readers observe;
        7. remove the log.

        A crash before 4 discards the log on the next open (staged
        segments become fsck-quarantinable orphans); a crash after 4
        replays the log *and re-applies the flip* (recovery calls
        :meth:`_apply_patch_flip`), so every kill point lands on the
        pre- or post-patch snapshot, never a hybrid.  ``kill_hook`` is
        the crash matrix's injection point (record-boundary events
        plus ``flip:pre``/``flip:post``/``unlink:post``).
        """
        from repro.storage.wal import WriteAheadLog

        if self._wal is not None:
            raise StorageError("patch scopes do not nest with atomic scopes")
        wal = WriteAheadLog(self.path, self.page_size)
        wal.kill_hook = kill_hook
        wal.begin_patch(header)
        self._wal = wal
        for pager in self._pagers.values():
            pager.wal = wal
        try:
            yield
            self.buffer.flush_dirty()
            wal.commit_patch(header)
            for pager in self._pagers.values():
                pager.sync()
            if kill_hook is not None:
                kill_hook("flip:pre")
            self.set_store_epoch(
                str(header["prefix"]), int(header["to_epoch"])
            )
            if kill_hook is not None:
                kill_hook("flip:post")
            wal.close(discard=True)
            if kill_hook is not None:
                kill_hook("unlink:post")
        except BaseException:
            # Leave the log behind; the next open discards it if the
            # commit marker never made it, or replays + re-flips if it
            # did.  Close the fd without removing the file.
            wal.close(discard=False)
            raise
        finally:
            self._wal = None
            for pager in self._pagers.values():
                pager.wal = None

    @contextmanager
    def atomic(self) -> Iterator[None]:
        """Crash-safe scope for multi-segment mutations (builds).

        Page write-backs inside the scope are logged to a write-ahead
        log before hitting the segments; on normal exit all dirty
        pages are flushed, the segments fsynced, and the log removed.
        If the process dies inside the scope, the next
        :class:`Database` open discards the torn log; if it dies
        after the commit record but before the log is removed, the
        open replays it.  Nesting is not supported.
        """
        from repro.storage.wal import WriteAheadLog

        if self._wal is not None:
            raise StorageError("atomic scopes do not nest")
        wal = WriteAheadLog(self.path, self.page_size)
        wal.begin()
        self._wal = wal
        for pager in self._pagers.values():
            pager.wal = wal
        try:
            yield
            self.buffer.flush_dirty()
            wal.commit()
            for pager in self._pagers.values():
                pager.sync()
            wal.close(discard=True)
        except BaseException:
            # Leave the (uncommitted) log behind; the next open
            # discards it.  Close the fd without removing the file.
            wal.close(discard=False)
            raise
        finally:
            self._wal = None
            for pager in self._pagers.values():
                pager.wal = None

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Flush and close every segment (idempotent)."""
        if self._closed:
            return
        self.buffer.flush()
        for pager in self._pagers.values():
            pager.close()
        self._pagers.clear()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"database at {self.path} is closed")
