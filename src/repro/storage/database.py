"""The database facade: a directory of segments behind one buffer pool.

A :class:`Database` stands in for the paper's Oracle instance: it owns
the shared :class:`~repro.storage.stats.DiskStats`, the
:class:`~repro.storage.buffer.BufferPool`, and one
:class:`~repro.storage.pager.Pager` per *segment* (a table or index
file).  Higher layers (heap files, B+-trees, spatial indexes) operate
on :class:`Segment` handles, which route all page traffic through the
buffer pool so that disk-access accounting is uniform.
"""

from __future__ import annotations

import shutil
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import StorageError
from repro.storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.pager import Pager
from repro.storage.stats import DiskStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.faults import FaultInjector

__all__ = ["Database", "Segment"]


class Segment:
    """Buffered page access to one file, with statistics attribution."""

    def __init__(self, pager: Pager, buffer: BufferPool) -> None:
        self._pager = pager
        self._buffer = buffer

    @property
    def name(self) -> str:
        """Segment name (statistics key)."""
        return self._pager.name

    @property
    def page_size(self) -> int:
        """Bytes per page."""
        return self._pager.page_size

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._pager.n_pages

    def fetch(self, page_no: int) -> bytearray:
        """The (cached) buffer for ``page_no``."""
        return self._buffer.fetch(self._pager, page_no)

    def allocate(self) -> tuple[int, bytearray]:
        """Allocate a new page; returns ``(page_no, buffer)``.

        The returned buffer is resident and already marked dirty.
        """
        page_no = self._pager.allocate()
        data = bytearray(self._pager.page_size)
        self._buffer.put_new(self._pager, page_no, data)
        return page_no, data

    def mark_dirty(self, page_no: int) -> None:
        """Flag a fetched page as modified."""
        self._buffer.mark_dirty(self._pager, page_no)


class Database:
    """A directory-backed collection of segments.

    Args:
        path: directory for the segment files (created if missing).
        pool_pages: buffer pool capacity in pages.
        page_size: page size for all segments.
        overwrite: if true, delete any existing directory contents.
        io_latency: simulated per-physical-read device latency in
            seconds (see :attr:`repro.storage.pager.Pager.io_latency`);
            0 disables it.
        fault_injector: a :class:`~repro.storage.faults.FaultInjector`
            installed on every segment's physical-read path (see
            :meth:`set_fault_injector`); ``None`` disables injection.
    """

    def __init__(
        self,
        path: str | Path,
        pool_pages: int = DEFAULT_POOL_PAGES,
        page_size: int = DEFAULT_PAGE_SIZE,
        overwrite: bool = False,
        io_latency: float = 0.0,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self.path = Path(path)
        if overwrite and self.path.exists():
            shutil.rmtree(self.path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.page_size = page_size
        self.stats = DiskStats()
        self.buffer = BufferPool(self.stats, pool_pages)
        self._io_latency = io_latency
        self._fault_injector = fault_injector
        self._pagers: dict[str, Pager] = {}
        self._closed = False
        self._wal = None
        self._recover_if_needed()

    def _recover_if_needed(self) -> None:
        """Replay or discard a leftover write-ahead log on open."""
        from repro.storage.wal import WriteAheadLog

        if not WriteAheadLog.needs_recovery(self.path):
            return
        wal = WriteAheadLog(self.path, self.page_size)
        outcome = wal.recover(self.segment)
        if outcome == "replayed":
            self.buffer.flush_dirty()
            for pager in self._pagers.values():
                pager.sync()

    # -- segments -----------------------------------------------------------

    def segment(self, name: str) -> Segment:
        """Open (creating if needed) the segment called ``name``."""
        self._check_open()
        pager = self._pagers.get(name)
        if pager is None:
            pager = Pager(
                self.path / f"{name}.seg",
                self.stats,
                name=name,
                page_size=self.page_size,
            )
            pager.wal = self._wal  # Join any active atomic scope.
            pager.io_latency = self._io_latency
            pager.fault_injector = self._fault_injector
            self._pagers[name] = pager
        return Segment(pager, self.buffer)

    def set_io_latency(self, seconds: float) -> None:
        """Set the simulated read latency on every (current and
        future) segment."""
        self._io_latency = seconds
        for pager in self._pagers.values():
            pager.io_latency = seconds

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Install (or with ``None``, remove) a fault injector on every
        current and future segment's physical-read path.

        Injection happens in :meth:`Pager.read_page`, *below* the
        buffer pool: warm-cache fetches are unaffected, which is the
        realistic failure surface (cached pages cannot fail).  To also
        fault warm reads, set ``database.buffer.fault_injector``
        directly.
        """
        self._fault_injector = injector
        for pager in self._pagers.values():
            pager.fault_injector = injector

    def has_segment(self, name: str) -> bool:
        """True if the segment file exists on disk."""
        return name in self._pagers or (self.path / f"{name}.seg").exists()

    def segment_names(self) -> list[str]:
        """All segment files present in the database directory."""
        return sorted(p.stem for p in self.path.glob("*.seg"))

    def segment_pages(self, name: str) -> int:
        """Allocated page count of segment ``name``."""
        return self.segment(name)._pager.n_pages

    # -- test methodology helpers ---------------------------------------------

    def flush(self) -> None:
        """Write back and drop every buffered page (cold cache).

        Matches the paper's flush-before-each-test methodology.
        """
        self.buffer.flush()

    def begin_measured_query(self) -> None:
        """Flush the buffer and zero counters — call before each query."""
        self.flush()
        self.stats.reset()

    @property
    def disk_accesses(self) -> int:
        """Physical reads since the last reset (the paper's metric)."""
        return self.stats.physical_reads

    # -- atomic multi-segment mutations -------------------------------------------

    @contextmanager
    def atomic(self) -> Iterator[None]:
        """Crash-safe scope for multi-segment mutations (builds).

        Page write-backs inside the scope are logged to a write-ahead
        log before hitting the segments; on normal exit all dirty
        pages are flushed, the segments fsynced, and the log removed.
        If the process dies inside the scope, the next
        :class:`Database` open discards the torn log; if it dies
        after the commit record but before the log is removed, the
        open replays it.  Nesting is not supported.
        """
        from repro.storage.wal import WriteAheadLog

        if self._wal is not None:
            raise StorageError("atomic scopes do not nest")
        wal = WriteAheadLog(self.path, self.page_size)
        wal.begin()
        self._wal = wal
        for pager in self._pagers.values():
            pager.wal = wal
        try:
            yield
            self.buffer.flush_dirty()
            wal.commit()
            for pager in self._pagers.values():
                pager.sync()
            wal.close(discard=True)
        except BaseException:
            # Leave the (uncommitted) log behind; the next open
            # discards it.  Close the fd without removing the file.
            wal.close(discard=False)
            raise
        finally:
            self._wal = None
            for pager in self._pagers.values():
                pager.wal = None

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Flush and close every segment (idempotent)."""
        if self._closed:
            return
        self.buffer.flush()
        for pager in self._pagers.values():
            pager.close()
        self._pagers.clear()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"database at {self.path} is closed")
