"""Heap files: sequences of variable-length records with RID access.

A heap file stores records in slotted pages of one segment.  Records
are addressed by **RID** — ``(page number, slot)`` packed into a single
64-bit integer so RIDs fit index payloads directly.

Insertion order is preserved page by page, which is what lets callers
control physical clustering: the paper arranges terrain data "on the
disk in such a way that their (x, y) clustering is preserved", so the
dataset builders sort records spatially before bulk-inserting them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.storage.database import Segment
from repro.storage.page import SlottedPage

__all__ = ["HeapFile", "pack_rid", "unpack_rid"]


def pack_rid(page_no: int, slot: int) -> int:
    """Pack ``(page_no, slot)`` into one 64-bit RID."""
    if not 0 <= slot < (1 << 16):
        raise StorageError(f"slot {slot} out of 16-bit range")
    if not 0 <= page_no < (1 << 47):
        raise StorageError(f"page {page_no} out of range")
    return (page_no << 16) | slot


def unpack_rid(rid: int) -> tuple[int, int]:
    """Unpack a 64-bit RID into ``(page_no, slot)``."""
    return rid >> 16, rid & 0xFFFF


class HeapFile:
    """Variable-length record storage over one segment."""

    def __init__(self, segment: Segment) -> None:
        self._segment = segment
        self._tail_page = segment.n_pages - 1 if segment.n_pages else None

    @property
    def segment(self) -> Segment:
        """The underlying segment."""
        return self._segment

    @property
    def n_pages(self) -> int:
        """Number of allocated pages."""
        return self._segment.n_pages

    # -- writes ---------------------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Append a record; returns its RID."""
        if self._tail_page is not None:
            buf = self._segment.fetch(self._tail_page)
            page = SlottedPage(buf, self._segment.payload_size)
            if page.can_fit(len(payload)):
                slot = page.insert(payload)
                self._segment.mark_dirty(self._tail_page)
                return pack_rid(self._tail_page, slot)
        page_no, buf = self._segment.allocate()
        page = SlottedPage.format(buf, self._segment.payload_size)
        if not page.can_fit(len(payload)):
            raise StorageError(
                f"record of {len(payload)} bytes cannot fit on an empty page"
            )
        slot = page.insert(payload)
        self._segment.mark_dirty(page_no)
        self._tail_page = page_no
        return pack_rid(page_no, slot)

    def insert_many(self, payloads: Iterable[bytes]) -> list[int]:
        """Bulk insert preserving order; returns the RIDs."""
        return [self.insert(p) for p in payloads]

    def delete(self, rid: int) -> None:
        """Delete the record at ``rid``."""
        page_no, slot = unpack_rid(rid)
        buf = self._segment.fetch(page_no)
        SlottedPage(buf, self._segment.payload_size).delete(slot)
        self._segment.mark_dirty(page_no)

    # -- reads -------------------------------------------------------------------

    def read(self, rid: int) -> bytes:
        """The record payload at ``rid``."""
        page_no, slot = unpack_rid(rid)
        buf = self._segment.fetch(page_no)
        return SlottedPage(buf, self._segment.payload_size).read(slot)

    def read_many(self, rids: Iterable[int]) -> list[bytes]:
        """Read several records, *sorted by page* to minimise I/O.

        Returns payloads in the order of the input RIDs.
        """
        rid_list = list(rids)
        order = sorted(range(len(rid_list)), key=lambda i: rid_list[i])
        out: list[bytes] = [b""] * len(rid_list)
        for i in order:
            out[i] = self.read(rid_list[i])
        return out

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """Iterate ``(rid, payload)`` over all live records."""
        for page_no in range(self._segment.n_pages):
            buf = self._segment.fetch(page_no)
            page = SlottedPage(buf, self._segment.payload_size)
            for slot, payload in page.records():
                yield pack_rid(page_no, slot), payload

    def count(self) -> int:
        """Number of live records (scans the file)."""
        return sum(1 for _ in self.scan())
