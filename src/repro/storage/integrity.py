"""Storage scrub, repair and quarantine (``python -m repro fsck``).

The paper's whole premise is that the multiresolution terrain model
lives *on disk*; a silently rotten page therefore poisons every query
whose interval touches it.  This module is the operational answer:

* :func:`scrub_database` reads **every page of every segment** through
  the pager (verifying v2 crc trailers on the way), walks the
  R*-tree segments structurally — child MBRs contained in their parent
  entry, segment endpoints ``e_low <= e_high`` — and cross-checks
  every cluster-run directory against its segment (runs in bounds and
  non-overlapping, blobs decoding to the directory's record counts),
  producing a machine-readable :class:`FsckReport`;
* :func:`repair_database` restores corrupt pages from a committed
  write-ahead log (see :meth:`WriteAheadLog.committed_records`) and
  quarantines whatever the log cannot restore into a
  ``quarantine.json`` sidecar;
* :func:`archive_pages` snapshots a healthy database's pages into a
  committed WAL — the repair source for scrub drills and operators
  who want a restore point before risky maintenance;
* :func:`inject_corruption` deliberately damages on-disk pages
  (bitflip / torn / zero, seeded) for drills and the CI integrity
  gate;
* :class:`PageQuarantine` is the bounded, thread-safe set of known-bad
  pages the query engine consults while serving degraded.

This module is one of the three sanctioned homes of raw page I/O
(reprolint rule R7): the corruption injector must write damaged bytes
*around* the pager, which would refuse to produce them.
"""

from __future__ import annotations

import json
import os
import random
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import PageCorruptionError, StorageError
from repro.obs.lockwatch import watched_lock
from repro.storage.database import parse_epoch_segment
from repro.storage.faults import CORRUPTION_KINDS, corrupt_buffer
from repro.storage.page import DEFAULT_PAGE_SIZE, verify_page
from repro.storage.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.storage.database import Database

__all__ = [
    "FsckReport",
    "OrphanSegment",
    "PageFault",
    "PageQuarantine",
    "QUARANTINE_FILENAME",
    "archive_pages",
    "inject_corruption",
    "load_quarantine",
    "repair_database",
    "scrub_database",
]

#: Sidecar listing pages repair could not restore.
QUARANTINE_FILENAME = "quarantine.json"

# R*-tree on-disk layout (mirrors repro.index.rstar; the scrub parses
# node pages tolerantly instead of instantiating the index, which
# would raise on the first bad page).
_RSTAR_META = struct.Struct("<4sIHQ6d")
_RSTAR_MAGIC = b"RST1"
_RSTAR_NODE_HEADER = struct.Struct("<BH")
_RSTAR_ENTRY = struct.Struct("<6dQ")


class PageQuarantine:
    """A bounded, thread-safe set of ``(segment, page)`` ids known bad.

    The query engine adds a page here when a read fails checksum
    verification; the bound keeps a corruption storm from growing the
    set without limit (oldest entries fall off first — if corruption
    is that widespread, serving degraded per-page bookkeeping no
    longer matters and ``fsck`` is the tool).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise StorageError(
                f"quarantine capacity must be >= 1, got {capacity}"
            )
        self._capacity = capacity
        self._lock = watched_lock("PageQuarantine._lock")
        self._pages: OrderedDict[tuple[str, int], None] = OrderedDict()

    def add(self, segment: str, page: int) -> bool:
        """Record a bad page; returns True when it is newly seen."""
        key = (segment, page)
        with self._lock:
            if key in self._pages:
                self._pages.move_to_end(key)
                return False
            while len(self._pages) >= self._capacity:
                self._pages.popitem(last=False)
            self._pages[key] = None
            return True

    def __contains__(self, key: tuple[str, int]) -> bool:
        with self._lock:
            return key in self._pages

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    @property
    def capacity(self) -> int:
        """Maximum number of tracked pages."""
        return self._capacity

    def snapshot(self) -> list[tuple[str, int]]:
        """The quarantined pages, oldest first."""
        with self._lock:
            return list(self._pages)

    def clear(self) -> None:
        """Forget every quarantined page (call after a repair)."""
        with self._lock:
            self._pages.clear()


@dataclass
class PageFault:
    """One page that failed checksum verification."""

    segment: str
    page: int
    expected: int | None = None
    actual: int | None = None
    repaired: bool = False
    quarantined: bool = False

    def to_json(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "segment": self.segment,
            "page": self.page,
            "expected": self.expected,
            "actual": self.actual,
            "repaired": self.repaired,
            "quarantined": self.quarantined,
        }


@dataclass
class OrphanSegment:
    """One staged shadow segment whose epoch was never committed.

    An aborted patch (crash before the WAL commit marker) leaves its
    ``{prefix}@{epoch}_*`` segments on disk with the store's committed
    epoch still below ``epoch``.  These pages are *garbage, not
    corruption*: the store never referenced them, every reader is
    consistent without them, and ``fsck`` reports them separately so a
    crashed patch does not read as data rot.
    """

    segment: str
    prefix: str
    epoch: int
    committed_epoch: int
    pages: int = 0
    removed: bool = False

    def to_json(self) -> dict[str, object]:
        """JSON-ready representation."""
        return {
            "segment": self.segment,
            "prefix": self.prefix,
            "epoch": self.epoch,
            "committed_epoch": self.committed_epoch,
            "pages": self.pages,
            "removed": self.removed,
        }


@dataclass
class FsckReport:
    """Outcome of a scrub (and optional repair) pass."""

    path: str
    page_format: int
    checksummed: bool
    segments_scanned: int = 0
    pages_scanned: int = 0
    corrupt: list[PageFault] = field(default_factory=list)
    structural: list[str] = field(default_factory=list)
    orphans: list[OrphanSegment] = field(default_factory=list)
    repair_attempted: bool = False

    @property
    def corrupt_pages(self) -> int:
        """Number of pages that failed checksum verification."""
        return len(self.corrupt)

    @property
    def repaired_pages(self) -> int:
        """Pages restored from the write-ahead log."""
        return sum(1 for fault in self.corrupt if fault.repaired)

    @property
    def quarantined_pages(self) -> int:
        """Pages repair could not restore."""
        return sum(1 for fault in self.corrupt if fault.quarantined)

    @property
    def orphan_segments(self) -> int:
        """Staged shadow segments from aborted patches."""
        return len(self.orphans)

    @property
    def ok(self) -> bool:
        """True when the database is (now) fully intact.

        Orphaned staged segments do not flip this: the committed data
        is whole, and the leftovers are reclaimable garbage, not rot.
        """
        return not self.structural and all(
            fault.repaired for fault in self.corrupt
        )

    def to_json(self) -> dict[str, object]:
        """Machine-readable summary (the ``fsck --json`` payload)."""
        return {
            "path": self.path,
            "page_format": self.page_format,
            "checksummed": self.checksummed,
            "ok": self.ok,
            "segments_scanned": self.segments_scanned,
            "pages_scanned": self.pages_scanned,
            "corrupt_pages": self.corrupt_pages,
            "repaired_pages": self.repaired_pages,
            "quarantined_pages": self.quarantined_pages,
            "repair_attempted": self.repair_attempted,
            "orphan_segments": self.orphan_segments,
            "corrupt": [fault.to_json() for fault in self.corrupt],
            "structural": list(self.structural),
            "orphans": [orphan.to_json() for orphan in self.orphans],
        }

    def to_text(self) -> str:
        """A printable report."""
        lines = [
            f"fsck {self.path}: " + ("OK" if self.ok else "PROBLEMS FOUND"),
            f"  page format: v{self.page_format}"
            + ("" if self.checksummed else " (unchecksummed; crc scan skipped)"),
            f"  segments scanned: {self.segments_scanned}",
            f"  pages scanned: {self.pages_scanned}",
            f"  corrupt pages: {self.corrupt_pages}",
        ]
        if self.repair_attempted:
            lines.append(f"  repaired from WAL: {self.repaired_pages}")
            lines.append(f"  quarantined: {self.quarantined_pages}")
        for fault in self.corrupt[:50]:
            state = (
                "repaired"
                if fault.repaired
                else "quarantined"
                if fault.quarantined
                else "corrupt"
            )
            lines.append(f"  !! {fault.segment} page {fault.page}: {state}")
        if len(self.corrupt) > 50:
            lines.append(f"  ... and {len(self.corrupt) - 50} more")
        for problem in self.structural[:50]:
            lines.append(f"  !! structure: {problem}")
        if len(self.structural) > 50:
            lines.append(
                f"  ... and {len(self.structural) - 50} more structural"
            )
        if self.orphans:
            lines.append(
                f"  orphaned staged segments: {self.orphan_segments} "
                "(aborted patch leftovers, not corruption)"
            )
        for orphan in self.orphans[:50]:
            state = "removed" if orphan.removed else "reclaimable"
            lines.append(
                f"  ?? orphan: {orphan.segment} (staged epoch "
                f"{orphan.epoch}, committed {orphan.committed_epoch}, "
                f"{orphan.pages} pages, {state})"
            )
        if len(self.orphans) > 50:
            lines.append(
                f"  ... and {len(self.orphans) - 50} more orphans"
            )
        return "\n".join(lines)


def scrub_database(
    database: "Database", registry: "MetricsRegistry | None" = None
) -> FsckReport:
    """Verify every page of every segment, plus R*-tree structure.

    Pages are read through :meth:`Segment.read_raw` — straight from
    disk, bypassing the buffer pool — so the scrub sees exactly what a
    cold restart would.  On a v1 database the crc scan degenerates to
    a readability check (no trailer to verify); the structural walk
    runs either way.
    """
    report = FsckReport(
        path=str(database.path),
        page_format=database.page_format,
        checksummed=database.checksums,
    )
    orphan_names = _find_orphans(database, report)
    for name in database.segment_names():
        if name in orphan_names:
            # An aborted patch's staged pages may legitimately be torn
            # (the crash interrupted their writes); scanning them would
            # misreport garbage as corruption.
            continue
        segment = database.segment(name)
        report.segments_scanned += 1
        for page_no in range(segment.n_pages):
            report.pages_scanned += 1
            try:
                segment.read_raw(page_no)
            except PageCorruptionError as exc:
                expected = exc.context.get("expected")
                actual = exc.context.get("actual")
                report.corrupt.append(
                    PageFault(
                        name,
                        page_no,
                        expected=expected
                        if isinstance(expected, int)
                        else None,
                        actual=actual if isinstance(actual, int) else None,
                    )
                )
    corrupt_keys = {(fault.segment, fault.page) for fault in report.corrupt}
    for name in database.segment_names():
        if name in orphan_names:
            continue
        _scrub_rtree(database, name, corrupt_keys, report.structural)
    _scrub_clusters(database, corrupt_keys, report.structural, orphan_names)
    if registry is not None:
        registry.counter("fsck.pages_scanned").inc(report.pages_scanned)
        registry.counter("fsck.pages_corrupt").inc(report.corrupt_pages)
        registry.counter("fsck.orphan_segments").inc(report.orphan_segments)
    return report


def _find_orphans(database: "Database", report: FsckReport) -> set[str]:
    """Record staged segments whose epoch exceeds the committed one.

    A shadow segment ``{prefix}@{N}_*`` is an orphan exactly when the
    store's committed epoch for ``prefix`` is below ``N``: only a
    patch that reached its commit marker flips the epoch, so anything
    above it was abandoned mid-flight.  Segments *at or below* the
    committed epoch are live history (pinned readers may still hold
    them) and are scrubbed normally.
    """
    orphan_names: set[str] = set()
    for name in database.segment_names():
        parsed = parse_epoch_segment(name)
        if parsed is None:
            continue
        prefix, epoch = parsed
        committed = database.store_epoch(prefix)
        if epoch <= committed:
            continue
        report.orphans.append(
            OrphanSegment(
                name,
                prefix,
                epoch,
                committed,
                pages=database.segment(name).n_pages,
            )
        )
        orphan_names.add(name)
    return orphan_names


def _read_page_tolerant(
    database: "Database", name: str, page_no: int
) -> bytes | None:
    """A page's bytes, or ``None`` when it cannot be read intact."""
    try:
        return bytes(database.segment(name).read_raw(page_no))
    except (PageCorruptionError, StorageError):
        return None


def _scrub_rtree(
    database: "Database",
    name: str,
    corrupt_keys: set[tuple[str, int]],
    problems: list[str],
) -> None:
    """Structural invariants of one R*-tree segment (no-op otherwise).

    Tolerant by design: the index class raises on the first bad page,
    but a scrub must keep walking and report everything it can reach.
    Checks, per reachable node entry: well-formed boxes
    (``min <= max`` on every axis, in particular ``e_low <= e_high``)
    and child-MBR containment in the parent entry's box.
    """
    segment = database.segment(name)
    if segment.n_pages == 0 or (name, 0) in corrupt_keys:
        return
    meta_raw = _read_page_tolerant(database, name, 0)
    if meta_raw is None or len(meta_raw) < _RSTAR_META.size:
        return
    magic, root, height, _count, *_space = _RSTAR_META.unpack_from(
        meta_raw, 0
    )
    if magic != _RSTAR_MAGIC:
        return  # Not an R*-tree segment.
    payload = segment.payload_size
    max_entries = (payload - _RSTAR_NODE_HEADER.size) // _RSTAR_ENTRY.size
    visited: set[int] = set()
    # (page_no, expected level, parent entry box or None for the root)
    stack: list[tuple[int, int, tuple[float, ...] | None]] = [
        (root, height, None)
    ]
    while stack:
        page_no, level, parent_box = stack.pop()
        if page_no in visited:
            problems.append(
                f"{name}: node page {page_no} reachable twice (cycle?)"
            )
            continue
        visited.add(page_no)
        if not 0 < page_no < segment.n_pages:
            problems.append(
                f"{name}: child pointer to page {page_no} out of range"
            )
            continue
        if (name, page_no) in corrupt_keys:
            continue  # Already reported by the crc scan.
        raw = _read_page_tolerant(database, name, page_no)
        if raw is None:
            problems.append(f"{name}: node page {page_no} unreadable")
            continue
        is_leaf, count = _RSTAR_NODE_HEADER.unpack_from(raw, 0)
        if count > max_entries:
            problems.append(
                f"{name}: node page {page_no} claims {count} entries "
                f"(capacity {max_entries})"
            )
            continue
        if bool(is_leaf) != (level == 1):
            problems.append(
                f"{name}: node page {page_no} leaf flag {bool(is_leaf)} "
                f"at level {level}"
            )
        offset = _RSTAR_NODE_HEADER.size
        for _ in range(count):
            x0, y0, e0, x1, y1, e1, payload_val = _RSTAR_ENTRY.unpack_from(
                raw, offset
            )
            offset += _RSTAR_ENTRY.size
            if x0 > x1 or y0 > y1:
                problems.append(
                    f"{name}: page {page_no} entry has an inverted MBR"
                )
            if e0 > e1:
                problems.append(
                    f"{name}: page {page_no} entry violates "
                    f"e_low <= e_high ({e0} > {e1})"
                )
            if parent_box is not None:
                px0, py0, pe0, px1, py1, pe1 = parent_box
                contained = (
                    px0 <= x0
                    and py0 <= y0
                    and pe0 <= e0
                    and x1 <= px1
                    and y1 <= py1
                    and e1 <= pe1
                )
                if not contained:
                    problems.append(
                        f"{name}: page {page_no} entry escapes its "
                        f"parent MBR"
                    )
            if not is_leaf:
                stack.append(
                    (payload_val, level - 1, (x0, y0, e0, x1, y1, e1))
                )


def _scrub_clusters(
    database: "Database",
    corrupt_keys: set[tuple[str, int]],
    problems: list[str],
    orphan_names: set[str] | None = None,
) -> None:
    """Cluster-run and directory consistency (no-op without sidecars).

    For every ``{prefix}_clusters.json`` directory: the run segment
    must exist, each cluster's page run must lie inside it, runs must
    not overlap, the byte count must fit its page count exactly
    (``ceil`` packing, like the builder writes), and the run's blob
    must decode to the directory's record count.  Runs touching pages
    the crc scan already flagged are skipped — one corrupt page is one
    fault, not two.
    """
    # Local import: the cluster layer lives above storage, and fsck
    # only needs its codec + directory reader when sidecars exist.
    from repro.core.clusters import ClusterDirectory, decode_cluster_blob

    suffix = "_clusters.json"
    for path in sorted(Path(database.path).glob(f"*{suffix}")):
        prefix = path.name[: -len(suffix)]
        base, sep, tag = prefix.rpartition("@")
        if (
            sep
            and tag.isdigit()
            and int(tag) > database.store_epoch(base)
        ):
            continue  # Sidecar of an aborted patch: orphan, not rot.
        try:
            directory = ClusterDirectory.load(database, prefix)
        except StorageError as exc:
            problems.append(
                f"{path.name}: unreadable cluster directory ({exc})"
            )
            continue
        name = directory.segment
        if orphan_names and name in orphan_names:
            continue
        if name not in database.segment_names():
            problems.append(
                f"{path.name}: cluster run segment {name} missing"
            )
            continue
        segment = database.segment(name)
        payload = segment.payload_size
        spans: list[tuple[int, int, int]] = []
        for meta in directory.clusters:
            label = f"{name}: cluster {meta.cluster_id}"
            end = meta.start_page + meta.n_pages
            if (
                meta.n_pages < 1
                or meta.start_page < 0
                or end > segment.n_pages
            ):
                problems.append(
                    f"{label} run [{meta.start_page}, {end}) outside "
                    f"segment ({segment.n_pages} pages)"
                )
                continue
            if (
                meta.n_bytes > meta.n_pages * payload
                or meta.n_bytes <= (meta.n_pages - 1) * payload
            ):
                problems.append(
                    f"{label} directory claims {meta.n_bytes} bytes in "
                    f"{meta.n_pages} run pages"
                )
                continue
            spans.append((meta.start_page, end, meta.cluster_id))
            if any(
                (name, page_no) in corrupt_keys
                for page_no in range(meta.start_page, end)
            ):
                continue  # The crc scan already reported these pages.
            try:
                blob = segment.read_run(meta.start_page, meta.n_pages)
                records = decode_cluster_blob(blob[: meta.n_bytes])
            except PageCorruptionError:
                continue  # Raced a concurrent writer; crc scan owns it.
            except StorageError as exc:
                problems.append(f"{label} blob does not decode ({exc})")
                continue
            if len(records) != meta.n_nodes:
                problems.append(
                    f"{label} blob holds {len(records)} records, "
                    f"directory says {meta.n_nodes}"
                )
        spans.sort()
        for (_, prev_end, prev_id), (start, _, cid) in zip(spans, spans[1:]):
            if start < prev_end:
                problems.append(
                    f"{name}: cluster {cid} run overlaps cluster {prev_id}"
                )


def repair_database(database: "Database", report: FsckReport) -> FsckReport:
    """Restore corrupt pages from a committed WAL; quarantine the rest.

    Each fault in ``report.corrupt`` is looked up in the committed
    write-ahead log (the crash-recovery log, or an operator snapshot
    from :func:`archive_pages`).  A found image is written straight
    through the pager — displacing any cached frame — and re-verified;
    pages with no recoverable image are recorded in
    ``quarantine.json``.  Orphaned staged segments (aborted patches,
    see :class:`OrphanSegment`) are reclaimed outright — segment plus
    stale sidecars — since no committed state references them.
    Mutates and returns ``report``.
    """
    report.repair_attempted = True
    for orphan in report.orphans:
        database.remove_segment(orphan.segment)
        orphan.removed = True
    for prefix in {
        f"{orphan.prefix}@{orphan.epoch}" for orphan in report.orphans
    }:
        for sidecar in ("dm_meta.json", "clusters.json"):
            stale = Path(database.path) / f"{prefix}_{sidecar}"
            if stale.exists():
                stale.unlink()
    wal = WriteAheadLog(database.path, database.page_size)
    records = wal.committed_records()
    images: dict[tuple[str, int], bytes] = {}
    if records is not None:
        for seg_name, page_no, data in records:
            images[(seg_name, page_no)] = data  # Last write wins.
    for fault in report.corrupt:
        image = images.get((fault.segment, fault.page))
        if image is None:
            fault.quarantined = True
            continue
        segment = database.segment(fault.segment)
        while segment.n_pages <= fault.page:
            segment.allocate()
        segment.write_page_image(fault.page, image)
        try:
            segment.read_raw(fault.page)
        except PageCorruptionError:
            fault.quarantined = True  # The log image itself was bad.
        else:
            fault.repaired = True
    quarantined = [fault for fault in report.corrupt if fault.quarantined]
    if quarantined:
        quarantine_path = Path(database.path) / QUARANTINE_FILENAME
        quarantine_path.write_text(
            json.dumps(
                {
                    "quarantined": [
                        {"segment": fault.segment, "page": fault.page}
                        for fault in quarantined
                    ]
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )
    return report


def load_quarantine(directory: str | Path) -> list[tuple[str, int]]:
    """The ``(segment, page)`` pairs quarantined by a past repair."""
    path = Path(directory) / QUARANTINE_FILENAME
    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    return [
        (str(entry["segment"]), int(entry["page"]))
        for entry in payload.get("quarantined", [])
    ]


def archive_pages(database: "Database") -> Path:
    """Snapshot every page of every segment into a committed WAL.

    The snapshot uses the crash-recovery log format, so it doubles as
    a repair source for ``fsck --repair`` — and a subsequent normal
    :class:`Database` open will replay it (a no-op restore of the same
    images) and remove it.  Take the snapshot while the database is
    quiesced and healthy; a corrupt page fails the snapshot rather
    than poisoning it.
    """
    wal = WriteAheadLog(database.path, database.page_size)
    wal.begin()
    try:
        for name in database.segment_names():
            segment = database.segment(name)
            for page_no in range(segment.n_pages):
                wal.log_page(
                    name, page_no, bytes(segment.read_raw(page_no))
                )
        wal.commit()
    finally:
        wal.close(discard=False)
    return wal.path


def inject_corruption(
    directory: str | Path,
    n_pages: int,
    seed: int = 0,
    kinds: tuple[str, ...] = CORRUPTION_KINDS,
    page_size: int = DEFAULT_PAGE_SIZE,
    segments: "tuple[str, ...] | None" = None,
) -> list[tuple[str, int, str]]:
    """Corrupt ``n_pages`` distinct on-disk pages (a scrub drill).

    Picks pages uniformly at random (seeded) across every segment file
    and damages each with a random kind from ``kinds``.  Works on the
    raw files — the database must be closed — and guarantees each
    damaged page fails v2 verification.  ``segments`` restricts the
    candidate pool to the named segments (the crash matrix uses it to
    damage only a patch's staged shadow segments, leaving committed
    state intact).  Returns ``(segment, page, kind)`` for every page
    hit, so drills can assert the scrub finds *exactly* the injected
    set.
    """
    directory = Path(directory)
    if n_pages < 1:
        raise StorageError(f"n_pages must be >= 1, got {n_pages}")
    if not kinds or not set(kinds) <= set(CORRUPTION_KINDS):
        raise StorageError(
            f"kinds must be a non-empty subset of {CORRUPTION_KINDS}, "
            f"got {kinds}"
        )
    pages: list[tuple[Path, int]] = []
    for seg_path in sorted(directory.glob("*.seg")):
        if segments is not None and seg_path.stem not in segments:
            continue
        count = seg_path.stat().st_size // page_size
        pages.extend((seg_path, page_no) for page_no in range(count))
    if n_pages > len(pages):
        raise StorageError(
            f"cannot corrupt {n_pages} pages: only {len(pages)} exist",
            path=str(directory),
        )
    rng = random.Random(seed)
    targets = rng.sample(pages, n_pages)
    injected: list[tuple[str, int, str]] = []
    for seg_path, page_no in targets:
        kind = kinds[rng.randrange(len(kinds))]
        fd = os.open(seg_path, os.O_RDWR)
        try:
            buffer = bytearray(os.pread(fd, page_size, page_no * page_size))
            corrupt_buffer(buffer, kind, rng)
            if verify_page(buffer):  # pragma: no cover - corrupt_buffer
                buffer[0] ^= 0xFF  # guarantees invalidity already
            os.pwrite(fd, bytes(buffer), page_no * page_size)
        finally:
            os.close(fd)
        injected.append((seg_path.stem, page_no, kind))
    return injected
