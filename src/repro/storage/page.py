"""Fixed-size pages and the slotted-page record layout.

Pages are ``bytearray`` buffers of :data:`DEFAULT_PAGE_SIZE` bytes
(8 KiB, Oracle's common block size).  :class:`SlottedPage` implements
the classic slotted layout used by heap files:

* bytes ``0..2``  — ``u16`` slot count
* bytes ``2..4``  — ``u16`` free-space offset (start of unused area)
* record payloads grow *forward* from byte 4
* the slot directory grows *backward* from the page end; each slot is
  ``(u16 offset, u16 length)`` with length ``0xFFFF`` marking a
  deleted slot.

The v2 page format additionally reserves the **last 4 bytes** of every
page for a ``zlib.crc32`` trailer over the preceding
``page_size - 4`` bytes (:data:`CHECKSUM_SIZE`).  Layout code never
sees the trailer: the pager hands consumers a *payload size* of
``page_size - CHECKSUM_SIZE`` and :class:`SlottedPage` (like the index
node layouts) operates on that logical size while the buffer stays
``page_size`` bytes.  :func:`seal_page` stamps the trailer before a
page hits disk; :func:`verify_page` checks it on the way back in.
v1 pages have no trailer (payload size equals page size) and are
never verified.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import PageError

__all__ = [
    "CHECKSUM_SIZE",
    "DEFAULT_PAGE_SIZE",
    "PAGE_FORMAT_V1",
    "PAGE_FORMAT_V2",
    "SlottedPage",
    "page_checksums",
    "seal_page",
    "verify_page",
]

DEFAULT_PAGE_SIZE = 8192

#: Bytes reserved at the page tail for the v2 CRC trailer.
CHECKSUM_SIZE = 4

#: Historical unchecksummed page format (payload = full page).
PAGE_FORMAT_V1 = 1

#: Checksummed page format: crc32 trailer in the last 4 bytes.
PAGE_FORMAT_V2 = 2

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_CRC = struct.Struct("<I")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size
_DELETED = 0xFFFF


def seal_page(buffer: bytearray) -> None:
    """Stamp the v2 CRC trailer into ``buffer`` in place.

    Idempotent: the checksum covers only the payload bytes (everything
    before the trailer), so re-sealing a sealed page is a no-op.
    """
    if len(buffer) <= CHECKSUM_SIZE:
        raise PageError(f"page of {len(buffer)} bytes has no payload to seal")
    crc = zlib.crc32(memoryview(buffer)[: -CHECKSUM_SIZE])
    _CRC.pack_into(buffer, len(buffer) - CHECKSUM_SIZE, crc)


def page_checksums(buffer: bytes | bytearray) -> tuple[int, int]:
    """``(stored, computed)`` checksums of a v2 page buffer."""
    if len(buffer) <= CHECKSUM_SIZE:
        raise PageError(f"page of {len(buffer)} bytes has no trailer")
    (stored,) = _CRC.unpack_from(buffer, len(buffer) - CHECKSUM_SIZE)
    computed = zlib.crc32(memoryview(buffer)[: -CHECKSUM_SIZE])
    return stored, computed


def verify_page(buffer: bytes | bytearray) -> bool:
    """True when a v2 page's trailer matches its payload."""
    stored, computed = page_checksums(buffer)
    return stored == computed


class SlottedPage:
    """A view over one page buffer providing slotted-record access.

    The class mutates the underlying buffer in place; callers are
    responsible for marking the page dirty in the buffer pool.
    """

    def __init__(self, buffer: bytearray, page_size: int | None = None) -> None:
        self._buf = buffer
        self._size = page_size if page_size is not None else len(buffer)
        if len(buffer) < self._size:
            raise PageError(
                f"buffer of {len(buffer)} bytes smaller than page size {self._size}"
            )

    @classmethod
    def format(cls, buffer: bytearray, page_size: int | None = None) -> "SlottedPage":
        """Initialise an empty slotted page in ``buffer``."""
        page = cls(buffer, page_size)
        _HEADER.pack_into(buffer, 0, 0, _HEADER_SIZE)
        return page

    # -- header ------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        """Number of slots, including deleted ones."""
        count, _ = _HEADER.unpack_from(self._buf, 0)
        return count

    @property
    def _free_offset(self) -> int:
        _, offset = _HEADER.unpack_from(self._buf, 0)
        return offset

    def _set_header(self, count: int, free_offset: int) -> None:
        _HEADER.pack_into(self._buf, 0, count, free_offset)

    # -- capacity ------------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for a new record *including* its slot entry."""
        dir_start = self._size - self.slot_count * _SLOT_SIZE
        return max(0, dir_start - self._free_offset)

    def can_fit(self, length: int) -> bool:
        """True if a record of ``length`` bytes fits on this page."""
        return self.free_space() >= length + _SLOT_SIZE

    # -- record operations ------------------------------------------------------

    def insert(self, payload: bytes) -> int:
        """Append ``payload`` and return its slot number."""
        if not self.can_fit(len(payload)):
            raise PageError(
                f"page overflow: {len(payload)} bytes into {self.free_space()} free"
            )
        if len(payload) >= _DELETED:
            raise PageError(f"record of {len(payload)} bytes exceeds slot limit")
        count = self.slot_count
        offset = self._free_offset
        self._buf[offset : offset + len(payload)] = payload
        slot_pos = self._size - (count + 1) * _SLOT_SIZE
        _SLOT.pack_into(self._buf, slot_pos, offset, len(payload))
        self._set_header(count + 1, offset + len(payload))
        return count

    def read(self, slot: int) -> bytes:
        """The payload stored in ``slot``."""
        offset, length = self._slot(slot)
        if length == _DELETED:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self._buf[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Mark ``slot`` deleted (space is not reclaimed)."""
        offset, length = self._slot(slot)
        if length == _DELETED:
            raise PageError(f"slot {slot} already deleted")
        slot_pos = self._size - (slot + 1) * _SLOT_SIZE
        _SLOT.pack_into(self._buf, slot_pos, offset, _DELETED)

    def is_deleted(self, slot: int) -> bool:
        """True if ``slot`` was deleted."""
        _, length = self._slot(slot)
        return length == _DELETED

    def records(self) -> list[tuple[int, bytes]]:
        """All live ``(slot, payload)`` pairs on the page."""
        result = []
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if length == _DELETED:
                continue
            result.append((slot, bytes(self._buf[offset : offset + length])))
        return result

    def _slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise PageError(f"slot {slot} out of range 0..{self.slot_count - 1}")
        slot_pos = self._size - (slot + 1) * _SLOT_SIZE
        return _SLOT.unpack_from(self._buf, slot_pos)
