"""Write-ahead logging for crash-safe store builds and live patches.

Building a Direct Mesh store writes thousands of pages across several
segments; a crash mid-build leaves the database directory in a state
the readers cannot use.  :class:`WriteAheadLog` wraps a build (or any
multi-segment mutation) in a simple physical-logging protocol:

* :meth:`log_page` appends full page images to ``wal.log`` *before*
  the pager writes them in place (the buffer-pool write-back path
  calls this automatically when a WAL is attached);
* :meth:`commit` fsyncs the log and writes a commit record;
* :meth:`recover` (run automatically when a database with a WAL file
  is opened) replays a committed log into the segments, or discards
  an uncommitted one — so a torn build either completes or vanishes.

The log format is deliberately simple — length-prefixed records with a
CRC each — and the protocol is redo-only (no undo needed because the
database is quiesced during builds).  This is not a concurrency
mechanism; it exists so an interrupted ``python -m repro build`` never
leaves a half-written database behind.

Record layout (little endian)::

    u32 crc | u32 kind | u32 len | body
    kind 1 = page image   (body: name | u64 page_no | page bytes,
                           len = name length)
    kind 2 = commit       (no body, len = 0)
    kind 3 = patch begin  (body: JSON patch header, len = body length)
    kind 4 = patch commit (body: JSON echo of prefix/to_epoch)

**The patch-record family** (kinds 3/4) wraps a *live mutation*: a
patch transaction stages replacement segments for the next store
epoch, logging every page like a build, bracketed by a typed header
record and a typed commit marker.  The header carries the store
prefix, the ``from``/``to`` epochs, the patched region, and the staged
segment names; recovery of a *committed* patch log replays the page
images and then re-applies the epoch flip through the
``on_patch_commit`` callback (idempotent — the flip may already have
happened before the crash).  An uncommitted patch log is discarded
exactly like a torn build: the staged segments it was filling become
*orphans* for ``fsck`` to quarantine, and the committed epoch in
``storage_meta.json`` never moved, so readers still see the pre-patch
snapshot.

**Kill hooks.**  :attr:`kill_hook`, when set, is invoked with a short
event label at every record boundary (before and after each append,
and around the commit fsync).  The crash matrix drives it with a
callable that raises at the N-th event, simulating a process death at
every point of the protocol; production code never sets it.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import Segment

__all__ = ["WriteAheadLog", "PATCH_HEADER_KEYS"]

_HEADER = struct.Struct("<III")
_PAGE_NO = struct.Struct("<Q")
_KIND_PAGE = 1
_KIND_COMMIT = 2
_KIND_PATCH_BEGIN = 3
_KIND_PATCH_COMMIT = 4

WAL_FILENAME = "wal.log"

#: Keys every patch header must carry (validated by
#: :meth:`WriteAheadLog.begin_patch`): the logical store prefix, the
#: epoch the patch starts from, the epoch it commits to, the patched
#: ``(min_x, min_y, max_x, max_y)`` region, and the staged segment
#: names.
PATCH_HEADER_KEYS = ("prefix", "from_epoch", "to_epoch", "region", "segments")


class WriteAheadLog:
    """A redo-only physical log over a database directory."""

    def __init__(self, directory: str | Path, page_size: int) -> None:
        self.path = Path(directory) / WAL_FILENAME
        self._page_size = page_size
        self._fd: int | None = None
        #: Test-only crash injection: called with an event label at
        #: every record boundary (``None`` in production).  Raising
        #: from the hook simulates a process death at that point.
        self.kill_hook: Callable[[str], None] | None = None

    def _kill_point(self, event: str) -> None:
        if self.kill_hook is not None:
            self.kill_hook(event)

    # -- writing ------------------------------------------------------------

    def begin(self) -> None:
        """Open a fresh log (truncating any stale one)."""
        self._fd = os.open(
            self.path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644
        )

    def begin_patch(self, header: dict) -> None:
        """Open a fresh log headed by a typed patch record.

        ``header`` describes the patch transaction (see
        :data:`PATCH_HEADER_KEYS`) and is what recovery needs to
        re-apply the epoch flip of a committed-but-interrupted patch.
        """
        missing = [key for key in PATCH_HEADER_KEYS if key not in header]
        if missing:
            raise StorageError(
                f"patch header is missing keys {missing}",
                header=sorted(header),
            )
        self.begin()
        self._kill_point("patch_begin:pre")
        self._append_json(_KIND_PATCH_BEGIN, header)
        self._kill_point("patch_begin:post")

    def log_page(self, segment: str, page_no: int, data: bytes) -> None:
        """Append a page image; must be called before the in-place write."""
        if self._fd is None:
            raise StorageError("WAL not begun")
        if len(data) != self._page_size:
            raise StorageError(
                f"WAL page image is {len(data)} bytes, "
                f"expected {self._page_size}"
            )
        name = segment.encode("utf-8")
        body = (
            struct.pack("<II", _KIND_PAGE, len(name))
            + name
            + _PAGE_NO.pack(page_no)
            + bytes(data)
        )
        crc = zlib.crc32(body)
        self._kill_point("page:pre")
        os.write(self._fd, struct.pack("<I", crc) + body)
        self._kill_point("page:post")

    def commit(self) -> None:
        """Seal the log: everything before this point is durable."""
        if self._fd is None:
            raise StorageError("WAL not begun")
        body = struct.pack("<II", _KIND_COMMIT, 0)
        self._kill_point("commit:pre")
        os.write(self._fd, struct.pack("<I", zlib.crc32(body)) + body)
        self._kill_point("commit:post")
        os.fsync(self._fd)
        self._kill_point("commit:durable")

    def commit_patch(self, header: dict) -> None:
        """Seal a patch log with the typed patch-commit marker.

        The marker echoes the flip target so a human inspecting a
        crashed directory can see what was about to happen; recovery
        itself trusts the begin header (the two are written by the
        same transaction and parsed together).
        """
        if self._fd is None:
            raise StorageError("WAL not begun")
        echo = {
            "prefix": header["prefix"],
            "to_epoch": header["to_epoch"],
        }
        self._kill_point("commit:pre")
        self._append_json(_KIND_PATCH_COMMIT, echo)
        self._kill_point("commit:post")
        os.fsync(self._fd)
        self._kill_point("commit:durable")

    def _append_json(self, kind: int, payload: dict) -> None:
        if self._fd is None:
            raise StorageError("WAL not begun")
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        body = struct.pack("<II", kind, len(blob)) + blob
        os.write(self._fd, struct.pack("<I", zlib.crc32(body)) + body)

    def close(self, discard: bool = True) -> None:
        """Close (and by default remove) the log after a clean finish."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        if discard and self.path.exists():
            self.path.unlink()

    # -- recovery ------------------------------------------------------------

    @classmethod
    def needs_recovery(cls, directory: str | Path) -> bool:
        """True when a WAL file is present (clean shutdowns remove it)."""
        return (Path(directory) / WAL_FILENAME).exists()

    def recover(
        self,
        open_segment: "Callable[[str], Segment]",
        on_patch_commit: Callable[[dict], None] | None = None,
    ) -> str:
        """Replay a committed log or discard an uncommitted one.

        Args:
            open_segment: callable ``name -> Segment`` used to apply
                page images (typically ``database.segment``).
            on_patch_commit: called with the patch header after a
                *committed patch* log's pages are applied, before the
                log is removed — the database re-applies the epoch
                flip here.  Must be idempotent: the crash may have
                happened after the flip but before the log unlink.

        Returns:
            ``"replayed"`` if a committed log was applied,
            ``"discarded"`` if the log had no commit record (the torn
            build's pages may be garbage, but no reader ever saw them
            because the store metadata is written last).
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return "discarded"
        records, committed, patch = self._parse(raw)
        if not committed:
            self.path.unlink()
            return "discarded"
        for segment_name, page_no, data in records:
            segment = open_segment(segment_name)
            while segment.n_pages <= page_no:
                segment.allocate()
            # Write-only application: a crash mid-write may have left
            # the target page torn, so fetching it first could fail
            # checksum verification — exactly the state the log is
            # here to repair.  The image goes straight through the
            # pager, displacing any cached frame.
            segment.write_page_image(page_no, data)
        if patch is not None and on_patch_commit is not None:
            on_patch_commit(patch)
        self.path.unlink()
        return "replayed"

    def committed_records(self) -> list[tuple[str, int, bytes]] | None:
        """Page images of a committed log, without applying them.

        Returns ``None`` when no log file exists or the log carries no
        (intact) commit record — in either case there is nothing a
        repair may legally replay.  Used by ``fsck --repair`` to
        restore individual corrupt pages.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None
        records, committed, _ = self._parse(raw)
        return records if committed else None

    def patch_header(self) -> dict | None:
        """The patch header of the current log, committed or not.

        ``fsck`` uses this to attribute staged segments in a crashed
        directory to the patch that was writing them.  Returns
        ``None`` when no log exists or it is not a patch log.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None
        _, _, patch = self._parse(raw)
        return patch

    def _parse(
        self, raw: bytes
    ) -> tuple[list[tuple[str, int, bytes]], bool, dict | None]:
        """Decode ``(page records, committed, patch header)``.

        Parsing stops at the first torn or corrupt record; ``committed``
        is true only when an intact commit marker (plain or patch) was
        seen, and ``patch`` is the decoded begin header of a patch log
        (present whether or not the log committed).
        """
        records: list[tuple[str, int, bytes]] = []
        offset = 0
        committed = False
        patch: dict | None = None
        while offset + 12 <= len(raw):
            (crc,) = struct.unpack_from("<I", raw, offset)
            kind, body_len = struct.unpack_from("<II", raw, offset + 4)
            if kind == _KIND_COMMIT:
                body = raw[offset + 4 : offset + 12]
                if zlib.crc32(body) != crc:
                    break  # Torn commit: treat as uncommitted.
                committed = True
                offset += 12
                continue
            if kind in (_KIND_PATCH_BEGIN, _KIND_PATCH_COMMIT):
                total = 12 + body_len
                if offset + total > len(raw):
                    break  # Torn header/marker.
                body = raw[offset + 4 : offset + total]
                if zlib.crc32(body) != crc:
                    break
                try:
                    payload = json.loads(raw[offset + 12 : offset + total])
                except ValueError:
                    break  # CRC passed but the JSON is not usable.
                if kind == _KIND_PATCH_BEGIN:
                    patch = payload
                else:
                    # A patch-commit marker without its begin header is
                    # not a state recovery knows how to apply.
                    if patch is None:
                        break
                    committed = True
                offset += total
                continue
            if kind != _KIND_PAGE:
                break  # Corrupt tail.
            total = 12 + body_len + 8 + self._page_size
            if offset + total > len(raw):
                break  # Torn record.
            body = raw[offset + 4 : offset + total]
            if zlib.crc32(body) != crc:
                break
            name = raw[offset + 12 : offset + 12 + body_len].decode("utf-8")
            (page_no,) = _PAGE_NO.unpack_from(raw, offset + 12 + body_len)
            data = raw[offset + 12 + body_len + 8 : offset + total]
            records.append((name, page_no, data))
            offset += total
        return records, committed, patch
