"""Write-ahead logging for crash-safe store builds.

Building a Direct Mesh store writes thousands of pages across several
segments; a crash mid-build leaves the database directory in a state
the readers cannot use.  :class:`WriteAheadLog` wraps a build (or any
multi-segment mutation) in a simple physical-logging protocol:

* :meth:`log_page` appends full page images to ``wal.log`` *before*
  the pager writes them in place (the buffer-pool write-back path
  calls this automatically when a WAL is attached);
* :meth:`commit` fsyncs the log and writes a commit record;
* :meth:`recover` (run automatically when a database with a WAL file
  is opened) replays a committed log into the segments, or discards
  an uncommitted one — so a torn build either completes or vanishes.

The log format is deliberately simple — length-prefixed records with a
CRC each — and the protocol is redo-only (no undo needed because the
database is quiesced during builds).  This is not a concurrency
mechanism; it exists so an interrupted ``python -m repro build`` never
leaves a half-written database behind.

Record layout (little endian)::

    u32 crc | u32 kind | u32 name_len | name | u64 page_no | page bytes
    kind 1 = page image, kind 2 = commit (no name/page)
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import StorageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.database import Segment

__all__ = ["WriteAheadLog"]

_HEADER = struct.Struct("<III")
_PAGE_NO = struct.Struct("<Q")
_KIND_PAGE = 1
_KIND_COMMIT = 2

WAL_FILENAME = "wal.log"


class WriteAheadLog:
    """A redo-only physical log over a database directory."""

    def __init__(self, directory: str | Path, page_size: int) -> None:
        self.path = Path(directory) / WAL_FILENAME
        self._page_size = page_size
        self._fd: int | None = None

    # -- writing ------------------------------------------------------------

    def begin(self) -> None:
        """Open a fresh log (truncating any stale one)."""
        self._fd = os.open(
            self.path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644
        )

    def log_page(self, segment: str, page_no: int, data: bytes) -> None:
        """Append a page image; must be called before the in-place write."""
        if self._fd is None:
            raise StorageError("WAL not begun")
        if len(data) != self._page_size:
            raise StorageError(
                f"WAL page image is {len(data)} bytes, "
                f"expected {self._page_size}"
            )
        name = segment.encode("utf-8")
        body = (
            struct.pack("<II", _KIND_PAGE, len(name))
            + name
            + _PAGE_NO.pack(page_no)
            + bytes(data)
        )
        crc = zlib.crc32(body)
        os.write(self._fd, struct.pack("<I", crc) + body)

    def commit(self) -> None:
        """Seal the log: everything before this point is durable."""
        if self._fd is None:
            raise StorageError("WAL not begun")
        body = struct.pack("<II", _KIND_COMMIT, 0)
        os.write(self._fd, struct.pack("<I", zlib.crc32(body)) + body)
        os.fsync(self._fd)

    def close(self, discard: bool = True) -> None:
        """Close (and by default remove) the log after a clean finish."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        if discard and self.path.exists():
            self.path.unlink()

    # -- recovery ------------------------------------------------------------

    @classmethod
    def needs_recovery(cls, directory: str | Path) -> bool:
        """True when a WAL file is present (clean shutdowns remove it)."""
        return (Path(directory) / WAL_FILENAME).exists()

    def recover(self, open_segment: "Callable[[str], Segment]") -> str:
        """Replay a committed log or discard an uncommitted one.

        Args:
            open_segment: callable ``name -> Segment`` used to apply
                page images (typically ``database.segment``).

        Returns:
            ``"replayed"`` if a committed log was applied,
            ``"discarded"`` if the log had no commit record (the torn
            build's pages may be garbage, but no reader ever saw them
            because the store metadata is written last).
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return "discarded"
        records, committed = self._parse(raw)
        if not committed:
            self.path.unlink()
            return "discarded"
        for segment_name, page_no, data in records:
            segment = open_segment(segment_name)
            while segment.n_pages <= page_no:
                segment.allocate()
            # Write-only application: a crash mid-write may have left
            # the target page torn, so fetching it first could fail
            # checksum verification — exactly the state the log is
            # here to repair.  The image goes straight through the
            # pager, displacing any cached frame.
            segment.write_page_image(page_no, data)
        self.path.unlink()
        return "replayed"

    def committed_records(self) -> list[tuple[str, int, bytes]] | None:
        """Page images of a committed log, without applying them.

        Returns ``None`` when no log file exists or the log carries no
        (intact) commit record — in either case there is nothing a
        repair may legally replay.  Used by ``fsck --repair`` to
        restore individual corrupt pages.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return None
        records, committed = self._parse(raw)
        return records if committed else None

    def _parse(
        self, raw: bytes
    ) -> tuple[list[tuple[str, int, bytes]], bool]:
        records: list[tuple[str, int, bytes]] = []
        offset = 0
        committed = False
        while offset + 12 <= len(raw):
            (crc,) = struct.unpack_from("<I", raw, offset)
            kind, name_len = struct.unpack_from("<II", raw, offset + 4)
            if kind == _KIND_COMMIT:
                body = raw[offset + 4 : offset + 12]
                if zlib.crc32(body) != crc:
                    break  # Torn commit: treat as uncommitted.
                committed = True
                offset += 12
                continue
            if kind != _KIND_PAGE:
                break  # Corrupt tail.
            total = 12 + name_len + 8 + self._page_size
            if offset + total > len(raw):
                break  # Torn record.
            body = raw[offset + 4 : offset + total]
            if zlib.crc32(body) != crc:
                break
            name = raw[offset + 12 : offset + 12 + name_len].decode("utf-8")
            (page_no,) = _PAGE_NO.unpack_from(raw, offset + 12 + name_len)
            data = raw[offset + 12 + name_len + 8 : offset + total]
            records.append((name, page_no, data))
            offset += total
        return records, committed
