"""Binary record codecs for PM and DM nodes.

Two on-disk record formats:

* **PM node record** (fixed 96 bytes) — the paper Section 2 tuple
  ``(ID, x, y, z, e, parent, child1, child2, wing1, wing2)`` plus the
  node's LOD-interval top and the footprint MBR that the paper notes
  every internal node must record.
* **DM node record** (variable) — the PM fields (minus the footprint,
  which the 3D index supersedes) plus the similar-LOD connection-point
  list of paper Section 4.

Both use little-endian :mod:`struct` packing.  ``LOD_INFINITY`` for
root intervals round-trips as an IEEE infinity.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import RecordError
from repro.geometry.primitives import Rect
from repro.mesh.progressive import NULL_ID, PMNode

__all__ = [
    "PM_RECORD_SIZE",
    "DMNodeRecord",
    "encode_pm_node",
    "decode_pm_node",
    "encode_dm_node",
    "decode_dm_node",
    "dm_record_size",
]

_PM = struct.Struct("<i5d5i4d")
PM_RECORD_SIZE = _PM.size

_DM_FIXED = struct.Struct("<i5d5iH")
_CONN_ENTRY = struct.Struct("<i")

#: ``n_conn`` sentinel marking a delta+varint compressed connection
#: list (extension; see :mod:`repro.storage.varint`).
_COMPRESSED_CONN = 0xFFFF


def encode_pm_node(node: PMNode) -> bytes:
    """Serialise a PM node (requires a computed footprint)."""
    if node.footprint is None:
        raise RecordError(f"node {node.id} has no footprint; normalise first")
    return _PM.pack(
        node.id,
        node.x,
        node.y,
        node.z,
        node.e,
        node.e_high,
        node.parent,
        node.child1,
        node.child2,
        node.wing1,
        node.wing2,
        node.footprint.min_x,
        node.footprint.min_y,
        node.footprint.max_x,
        node.footprint.max_y,
    )


def decode_pm_node(payload: bytes) -> PMNode:
    """Deserialise a PM node record."""
    if len(payload) != PM_RECORD_SIZE:
        raise RecordError(
            f"PM record is {len(payload)} bytes, expected {PM_RECORD_SIZE}"
        )
    (
        node_id,
        x,
        y,
        z,
        e,
        e_high,
        parent,
        child1,
        child2,
        wing1,
        wing2,
        fx0,
        fy0,
        fx1,
        fy1,
    ) = _PM.unpack(payload)
    node = PMNode(
        node_id,
        x,
        y,
        z,
        error=e,
        parent=parent,
        child1=child1,
        child2=child2,
        wing1=wing1,
        wing2=wing2,
    )
    node.e = e
    node.e_high = e_high
    node.footprint = Rect(fx0, fy0, fx1, fy1)
    return node


@dataclass(slots=True)
class DMNodeRecord:
    """A decoded Direct Mesh node.

    ``connections`` is the similar-LOD connection-point list; the
    interval is ``[e_low, e_high)`` with ``e_high`` infinite at roots.
    """

    id: int
    x: float
    y: float
    z: float
    e_low: float
    e_high: float
    parent: int
    child1: int
    child2: int
    wing1: int
    wing2: int
    connections: list[int]

    @property
    def is_leaf(self) -> bool:
        """True for original terrain points."""
        return self.child1 == NULL_ID

    def interval_contains(self, lod: float) -> bool:
        """True if ``lod`` lies in ``[e_low, e_high)``."""
        return self.e_low <= lod < self.e_high

    def interval_intersects(self, lo: float, hi: float) -> bool:
        """True if ``[e_low, e_high)`` intersects the closed ``[lo, hi]``."""
        return self.e_low <= hi and self.e_high > lo


def encode_dm_node(
    node: PMNode, connections: list[int], compress: bool = False
) -> bytes:
    """Serialise a DM node with its connection-point list.

    With ``compress`` the connection list is stored delta+varint coded
    (typically 2-3x smaller); the format is self-describing, so
    :func:`decode_dm_node` handles both encodings.
    """
    if len(connections) >= _COMPRESSED_CONN:
        raise RecordError(
            f"node {node.id}: {len(connections)} connections exceed u16"
        )
    head = _DM_FIXED.pack(
        node.id,
        node.x,
        node.y,
        node.z,
        node.e,
        node.e_high,
        node.parent,
        node.child1,
        node.child2,
        node.wing1,
        node.wing2,
        _COMPRESSED_CONN if compress else len(connections),
    )
    if compress:
        from repro.storage.varint import encode_id_list

        return head + encode_id_list(connections)
    tail = struct.pack(f"<{len(connections)}i", *connections)
    return head + tail


def decode_dm_node(payload: bytes) -> DMNodeRecord:
    """Deserialise a DM node record."""
    if len(payload) < _DM_FIXED.size:
        raise RecordError(
            f"DM record is {len(payload)} bytes, below fixed part "
            f"{_DM_FIXED.size}"
        )
    (
        node_id,
        x,
        y,
        z,
        e_low,
        e_high,
        parent,
        child1,
        child2,
        wing1,
        wing2,
        n_conn,
    ) = _DM_FIXED.unpack_from(payload, 0)
    if n_conn == _COMPRESSED_CONN:
        from repro.storage.varint import decode_id_list

        connections, end = decode_id_list(payload, _DM_FIXED.size)
        if end != len(payload):
            raise RecordError(
                f"DM record has {len(payload) - end} trailing bytes"
            )
    else:
        expected = _DM_FIXED.size + n_conn * _CONN_ENTRY.size
        if len(payload) != expected:
            raise RecordError(
                f"DM record is {len(payload)} bytes, expected {expected} "
                f"for {n_conn} connections"
            )
        connections = list(
            struct.unpack_from(f"<{n_conn}i", payload, _DM_FIXED.size)
        )
    return DMNodeRecord(
        node_id,
        x,
        y,
        z,
        e_low,
        e_high,
        parent,
        child1,
        child2,
        wing1,
        wing2,
        connections,
    )


def dm_record_size(n_connections: int) -> int:
    """On-disk size of a DM record with ``n_connections`` entries."""
    return _DM_FIXED.size + n_connections * _CONN_ENTRY.size
