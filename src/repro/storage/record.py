"""Binary record codecs for PM and DM nodes.

Two on-disk record formats:

* **PM node record** (fixed 96 bytes) — the paper Section 2 tuple
  ``(ID, x, y, z, e, parent, child1, child2, wing1, wing2)`` plus the
  node's LOD-interval top and the footprint MBR that the paper notes
  every internal node must record.
* **DM node record** (variable) — the PM fields (minus the footprint,
  which the 3D index supersedes) plus the similar-LOD connection-point
  list of paper Section 4.

Both use little-endian :mod:`struct` packing.  ``LOD_INFINITY`` for
root intervals round-trips as an IEEE infinity.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvariantError, RecordError
from repro.geometry.primitives import Rect
from repro.mesh.progressive import NULL_ID, PMNode

__all__ = [
    "PM_RECORD_SIZE",
    "DMNodeRecord",
    "DMNodeColumns",
    "encode_pm_node",
    "decode_pm_node",
    "encode_dm_node",
    "encode_dm_record",
    "decode_dm_node",
    "decode_dm_nodes_columnar",
    "concat_dm_columns",
    "dm_record_size",
]

_PM = struct.Struct("<i5d5i4d")
PM_RECORD_SIZE = _PM.size

_DM_FIXED = struct.Struct("<i5d5iH")
_CONN_ENTRY = struct.Struct("<i")

#: ``n_conn`` sentinel marking a delta+varint compressed connection
#: list (extension; see :mod:`repro.storage.varint`).
_COMPRESSED_CONN = 0xFFFF


def encode_pm_node(node: PMNode) -> bytes:
    """Serialise a PM node (requires a computed footprint)."""
    if node.footprint is None:
        raise RecordError(f"node {node.id} has no footprint; normalise first")
    return _PM.pack(
        node.id,
        node.x,
        node.y,
        node.z,
        node.e,
        node.e_high,
        node.parent,
        node.child1,
        node.child2,
        node.wing1,
        node.wing2,
        node.footprint.min_x,
        node.footprint.min_y,
        node.footprint.max_x,
        node.footprint.max_y,
    )


def decode_pm_node(payload: bytes) -> PMNode:
    """Deserialise a PM node record."""
    if len(payload) != PM_RECORD_SIZE:
        raise RecordError(
            f"PM record is {len(payload)} bytes, expected {PM_RECORD_SIZE}"
        )
    (
        node_id,
        x,
        y,
        z,
        e,
        e_high,
        parent,
        child1,
        child2,
        wing1,
        wing2,
        fx0,
        fy0,
        fx1,
        fy1,
    ) = _PM.unpack(payload)
    node = PMNode(
        node_id,
        x,
        y,
        z,
        error=e,
        parent=parent,
        child1=child1,
        child2=child2,
        wing1=wing1,
        wing2=wing2,
    )
    node.e = e
    node.e_high = e_high
    node.footprint = Rect(fx0, fy0, fx1, fy1)
    return node


@dataclass(slots=True)
class DMNodeRecord:
    """A decoded Direct Mesh node.

    ``connections`` is the similar-LOD connection-point list; the
    interval is ``[e_low, e_high)`` with ``e_high`` infinite at roots.
    """

    id: int
    x: float
    y: float
    z: float
    e_low: float
    e_high: float
    parent: int
    child1: int
    child2: int
    wing1: int
    wing2: int
    connections: list[int]

    @property
    def is_leaf(self) -> bool:
        """True for original terrain points."""
        return self.child1 == NULL_ID

    def interval_contains(self, lod: float) -> bool:
        """True if ``lod`` lies in ``[e_low, e_high)``."""
        return self.e_low <= lod < self.e_high

    def interval_intersects(self, lo: float, hi: float) -> bool:
        """True if ``[e_low, e_high)`` intersects the closed ``[lo, hi]``."""
        return self.e_low <= hi and self.e_high > lo


def encode_dm_node(
    node: PMNode, connections: list[int], compress: bool = False
) -> bytes:
    """Serialise a DM node with its connection-point list.

    With ``compress`` the connection list is stored delta+varint coded
    (typically 2-3x smaller); the format is self-describing, so
    :func:`decode_dm_node` handles both encodings.
    """
    if len(connections) >= _COMPRESSED_CONN:
        raise RecordError(
            f"node {node.id}: {len(connections)} connections exceed u16"
        )
    head = _DM_FIXED.pack(
        node.id,
        node.x,
        node.y,
        node.z,
        node.e,
        node.e_high,
        node.parent,
        node.child1,
        node.child2,
        node.wing1,
        node.wing2,
        _COMPRESSED_CONN if compress else len(connections),
    )
    if compress:
        from repro.storage.varint import encode_id_list

        return head + encode_id_list(connections)
    tail = struct.pack(f"<{len(connections)}i", *connections)
    return head + tail


def encode_dm_record(record: DMNodeRecord, compress: bool = False) -> bytes:
    """Serialise an already-decoded :class:`DMNodeRecord`.

    :func:`encode_dm_node` serialises build-time ``PMNode`` objects;
    this is its runtime twin for records read back from the store —
    the delta-session wire format (:mod:`repro.core.wire`) re-encodes
    fetched records into frame payloads.  The output is byte-identical
    to the on-disk encoding, so :func:`decode_dm_node` decodes both.
    """
    if len(record.connections) >= _COMPRESSED_CONN:
        raise RecordError(
            f"node {record.id}: {len(record.connections)} connections "
            "exceed u16"
        )
    head = _DM_FIXED.pack(
        record.id,
        record.x,
        record.y,
        record.z,
        record.e_low,
        record.e_high,
        record.parent,
        record.child1,
        record.child2,
        record.wing1,
        record.wing2,
        _COMPRESSED_CONN if compress else len(record.connections),
    )
    if compress:
        from repro.storage.varint import encode_id_list

        return head + encode_id_list(record.connections)
    tail = struct.pack(
        f"<{len(record.connections)}i", *record.connections
    )
    return head + tail


def decode_dm_node(payload: bytes) -> DMNodeRecord:
    """Deserialise a DM node record."""
    if len(payload) < _DM_FIXED.size:
        raise RecordError(
            f"DM record is {len(payload)} bytes, below fixed part "
            f"{_DM_FIXED.size}"
        )
    (
        node_id,
        x,
        y,
        z,
        e_low,
        e_high,
        parent,
        child1,
        child2,
        wing1,
        wing2,
        n_conn,
    ) = _DM_FIXED.unpack_from(payload, 0)
    if n_conn == _COMPRESSED_CONN:
        from repro.storage.varint import decode_id_list

        connections, end = decode_id_list(payload, _DM_FIXED.size)
        if end != len(payload):
            raise RecordError(
                f"DM record has {len(payload) - end} trailing bytes"
            )
    else:
        expected = _DM_FIXED.size + n_conn * _CONN_ENTRY.size
        if len(payload) != expected:
            raise RecordError(
                f"DM record is {len(payload)} bytes, expected {expected} "
                f"for {n_conn} connections"
            )
        connections = list(
            struct.unpack_from(f"<{n_conn}i", payload, _DM_FIXED.size)
        )
    return DMNodeRecord(
        node_id,
        x,
        y,
        z,
        e_low,
        e_high,
        parent,
        child1,
        child2,
        wing1,
        wing2,
        connections,
    )


def dm_record_size(n_connections: int) -> int:
    """On-disk size of a DM record with ``n_connections`` entries."""
    return _DM_FIXED.size + n_connections * _CONN_ENTRY.size


#: numpy view of the DM fixed part — field-for-field the layout of
#: ``_DM_FIXED`` (``<i5d5iH``, 66 bytes, no padding).
_DM_COLUMN_DTYPE = np.dtype(
    [
        ("id", "<i4"),
        ("x", "<f8"),
        ("y", "<f8"),
        ("z", "<f8"),
        ("e_low", "<f8"),
        ("e_high", "<f8"),
        ("parent", "<i4"),
        ("child1", "<i4"),
        ("child2", "<i4"),
        ("wing1", "<i4"),
        ("wing2", "<i4"),
        ("n_conn", "<u2"),
    ]
)
if _DM_COLUMN_DTYPE.itemsize != _DM_FIXED.size:
    raise InvariantError(
        "columnar dtype drifted from the packed record layout",
        dtype_itemsize=_DM_COLUMN_DTYPE.itemsize,
        struct_size=_DM_FIXED.size,
    )


@dataclass(slots=True)
class DMNodeColumns:
    """A page of DM nodes as a numpy struct-of-arrays.

    The columnar twin of a ``list[DMNodeRecord]``: one contiguous
    array per field, with the variable-length connection lists stored
    CSR-style (``conn_flat[conn_offsets[i]:conn_offsets[i + 1]]`` is
    row ``i``'s list).  This is what the vectorized query kernels and
    the semantic cache operate on — predicates run as array masks and
    only the surviving rows are materialised back into records.
    """

    ids: np.ndarray
    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    e_low: np.ndarray
    e_high: np.ndarray
    parent: np.ndarray
    child1: np.ndarray
    child2: np.ndarray
    wing1: np.ndarray
    wing2: np.ndarray
    conn_offsets: np.ndarray
    conn_flat: np.ndarray

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @property
    def nbytes(self) -> int:
        """Total array payload (the cache's byte accounting)."""
        return sum(
            arr.nbytes
            for arr in (
                self.ids, self.x, self.y, self.z, self.e_low, self.e_high,
                self.parent, self.child1, self.child2, self.wing1,
                self.wing2, self.conn_offsets, self.conn_flat,
            )
        )

    def record(self, i: int) -> DMNodeRecord:
        """Materialise row ``i`` as a :class:`DMNodeRecord`."""
        lo = int(self.conn_offsets[i])
        hi = int(self.conn_offsets[i + 1])
        return DMNodeRecord(
            int(self.ids[i]),
            float(self.x[i]),
            float(self.y[i]),
            float(self.z[i]),
            float(self.e_low[i]),
            float(self.e_high[i]),
            int(self.parent[i]),
            int(self.child1[i]),
            int(self.child2[i]),
            int(self.wing1[i]),
            int(self.wing2[i]),
            [int(c) for c in self.conn_flat[lo:hi]],
        )

    def materialize(self, mask: np.ndarray) -> dict[int, DMNodeRecord]:
        """Rows where ``mask`` holds, as an id-keyed record dict.

        Row order is preserved, so the dict's insertion order matches
        the scalar filters iterating the same records.  Columns are
        converted with one ``tolist`` per field (much cheaper than
        per-element ``int()``/``float()`` casts on the hot path).
        """
        indices = np.flatnonzero(mask)
        if indices.size == 0:
            return {}
        ids = self.ids[indices].tolist()
        xs = self.x[indices].tolist()
        ys = self.y[indices].tolist()
        zs = self.z[indices].tolist()
        e_lows = self.e_low[indices].tolist()
        e_highs = self.e_high[indices].tolist()
        parents = self.parent[indices].tolist()
        child1s = self.child1[indices].tolist()
        child2s = self.child2[indices].tolist()
        wing1s = self.wing1[indices].tolist()
        wing2s = self.wing2[indices].tolist()
        starts = self.conn_offsets[indices].tolist()
        ends = self.conn_offsets[indices + 1].tolist()
        flat = self.conn_flat
        out: dict[int, DMNodeRecord] = {}
        for k, nid in enumerate(ids):
            out[nid] = DMNodeRecord(
                nid, xs[k], ys[k], zs[k], e_lows[k], e_highs[k],
                parents[k], child1s[k], child2s[k], wing1s[k], wing2s[k],
                flat[starts[k]:ends[k]].tolist(),
            )
        return out

    def select(self, mask: np.ndarray) -> "DMNodeColumns":
        """Rows where ``mask`` holds, as a new columnar page.

        The columnar analogue of fetching a subset of RIDs: the fixed
        columns are gathered directly and the CSR connection offsets
        are re-based over the surviving rows.  Returns ``self`` when
        the mask keeps every row (no copies on the common
        whole-cluster case).
        """
        indices = np.flatnonzero(mask)
        if indices.size == len(self):
            return self
        starts = self.conn_offsets[indices]
        lengths = self.conn_offsets[indices + 1] - starts
        offsets = np.zeros(indices.size + 1, np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        if total:
            gather = np.repeat(starts - offsets[:-1], lengths)
            gather += np.arange(total, dtype=np.int64)
            flat = self.conn_flat[gather]
        else:
            flat = self.conn_flat[:0]
        return DMNodeColumns(
            ids=self.ids[indices],
            x=self.x[indices],
            y=self.y[indices],
            z=self.z[indices],
            e_low=self.e_low[indices],
            e_high=self.e_high[indices],
            parent=self.parent[indices],
            child1=self.child1[indices],
            child2=self.child2[indices],
            wing1=self.wing1[indices],
            wing2=self.wing2[indices],
            conn_offsets=offsets,
            conn_flat=flat,
        )

    def records(self) -> list[DMNodeRecord]:
        """Every row materialised (mainly for tests and fallbacks)."""
        return [self.record(i) for i in range(len(self))]


def concat_dm_columns(parts: Sequence[DMNodeColumns]) -> DMNodeColumns:
    """Concatenate columnar pages row-wise into one page.

    The cluster fast path decodes whole clusters independently (and
    caches them decoded); a query touching several clusters stitches
    their pages together here before the vectorized filters run.  Row
    order follows ``parts`` order, and the CSR connection offsets are
    re-based so ``conn_flat`` slicing stays valid.  Zero- and
    one-element inputs short-circuit without copying.
    """
    parts = [p for p in parts if len(p) > 0]
    if not parts:
        return decode_dm_nodes_columnar([])
    if len(parts) == 1:
        return parts[0]
    offsets = np.zeros(sum(len(p) for p in parts) + 1, np.int64)
    row = 0
    base = 0
    for part in parts:
        n = len(part)
        offsets[row + 1:row + n + 1] = part.conn_offsets[1:] + base
        row += n
        base += int(part.conn_offsets[-1])
    return DMNodeColumns(
        ids=np.concatenate([p.ids for p in parts]),
        x=np.concatenate([p.x for p in parts]),
        y=np.concatenate([p.y for p in parts]),
        z=np.concatenate([p.z for p in parts]),
        e_low=np.concatenate([p.e_low for p in parts]),
        e_high=np.concatenate([p.e_high for p in parts]),
        parent=np.concatenate([p.parent for p in parts]),
        child1=np.concatenate([p.child1 for p in parts]),
        child2=np.concatenate([p.child2 for p in parts]),
        wing1=np.concatenate([p.wing1 for p in parts]),
        wing2=np.concatenate([p.wing2 for p in parts]),
        conn_offsets=offsets,
        conn_flat=np.concatenate([p.conn_flat for p in parts]),
    )


def decode_dm_nodes_columnar(
    payloads: Sequence[bytes],
) -> DMNodeColumns:
    """Batch-decode DM records into a :class:`DMNodeColumns`.

    Accepts the same payloads as :func:`decode_dm_node` (compressed
    and uncompressed connection lists may mix freely) and applies the
    same validation; the fixed parts are decoded in one
    ``np.frombuffer`` pass instead of per-record ``struct`` unpacking.
    """
    n = len(payloads)
    if n == 0:
        empty_f = np.empty(0, np.float64)
        empty_i = np.empty(0, np.int32)
        return DMNodeColumns(
            empty_i, empty_f, empty_f, empty_f, empty_f, empty_f,
            empty_i, empty_i, empty_i, empty_i, empty_i,
            np.zeros(1, np.int64), np.empty(0, np.int32),
        )
    fixed_size = _DM_FIXED.size
    for payload in payloads:
        if len(payload) < fixed_size:
            raise RecordError(
                f"DM record is {len(payload)} bytes, below fixed part "
                f"{fixed_size}"
            )
    heads = b"".join(p[:fixed_size] for p in payloads)
    fixed = np.frombuffer(heads, dtype=_DM_COLUMN_DTYPE)

    # Tails: the raw uncompressed bytes are already little-endian i32,
    # so each record contributes its byte slice to one join + one
    # frombuffer at the end (a per-record frombuffer would dominate the
    # whole decode); compressed lists are expanded back to i32 bytes.
    n_conns = fixed["n_conn"].tolist()
    counts = np.empty(n, np.int64)
    parts: list[bytes] = []
    for i, payload in enumerate(payloads):
        nc = n_conns[i]
        if nc == _COMPRESSED_CONN:
            from repro.storage.varint import decode_id_list

            connections, end = decode_id_list(payload, fixed_size)
            if end != len(payload):
                raise RecordError(
                    f"DM record has {len(payload) - end} trailing bytes"
                )
            counts[i] = len(connections)
            parts.append(np.asarray(connections, "<i4").tobytes())
        else:
            expected = fixed_size + nc * _CONN_ENTRY.size
            if len(payload) != expected:
                raise RecordError(
                    f"DM record is {len(payload)} bytes, expected "
                    f"{expected} for {nc} connections"
                )
            counts[i] = nc
            parts.append(payload[fixed_size:])

    offsets = np.zeros(n + 1, np.int64)
    np.cumsum(counts, out=offsets[1:])
    flat = np.frombuffer(b"".join(parts), "<i4").astype(np.int32, copy=False)
    return DMNodeColumns(
        ids=np.ascontiguousarray(fixed["id"]),
        x=np.ascontiguousarray(fixed["x"]),
        y=np.ascontiguousarray(fixed["y"]),
        z=np.ascontiguousarray(fixed["z"]),
        e_low=np.ascontiguousarray(fixed["e_low"]),
        e_high=np.ascontiguousarray(fixed["e_high"]),
        parent=np.ascontiguousarray(fixed["parent"]),
        child1=np.ascontiguousarray(fixed["child1"]),
        child2=np.ascontiguousarray(fixed["child2"]),
        wing1=np.ascontiguousarray(fixed["wing1"]),
        wing2=np.ascontiguousarray(fixed["wing2"]),
        conn_offsets=offsets,
        conn_flat=flat,
    )
