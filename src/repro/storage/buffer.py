"""LRU buffer pool shared by every segment of a database.

The pool caches page buffers keyed by ``(segment name, page number)``.
A request that misses triggers a physical read through the segment's
pager; a hit costs only a logical read.  Dirty pages are written back
on eviction and on :meth:`BufferPool.flush`.

The paper's methodology — "the database and system buffer is flushed
before each test" — maps to calling :meth:`flush` before each measured
query, after which every first touch of a page is a disk access.

Concurrency: the read path is safe to call from many threads at once
(the query engine's worker pool shares one database).  A short global
latch protects the frame map, while physical reads — the slow part —
run outside it under per-page *striped* locks, so misses on different
pages overlap while two threads missing on the *same* page perform
only one physical read between them.  Writers (builds, deletes) are
not parallelised; run mutations single-threaded as before.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from typing import TYPE_CHECKING

from repro.errors import BufferPoolError
from repro.obs.lockwatch import watched_lock
from repro.storage.pager import Pager
from repro.storage.stats import DiskStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.faults import FaultInjector

__all__ = ["BufferPool", "DEFAULT_POOL_PAGES", "DEFAULT_LOCK_STRIPES"]

#: Default pool capacity: 256 x 8 KiB = 2 MiB.
DEFAULT_POOL_PAGES = 256

#: Number of page-load lock stripes; misses on pages in different
#: stripes proceed in parallel.
DEFAULT_LOCK_STRIPES = 64


class _Frame:
    __slots__ = ("data", "dirty", "pager")

    def __init__(self, data: bytearray, pager: Pager) -> None:
        self.data = data
        self.dirty = False
        self.pager = pager


class BufferPool:
    """A shared LRU page cache with write-back semantics."""

    def __init__(
        self,
        stats: DiskStats,
        capacity: int = DEFAULT_POOL_PAGES,
        lock_stripes: int = DEFAULT_LOCK_STRIPES,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        if lock_stripes < 1:
            raise BufferPoolError(
                f"lock_stripes must be >= 1, got {lock_stripes}"
            )
        self._stats = stats
        self._capacity = capacity
        self._frames: OrderedDict[tuple[str, int], _Frame] = OrderedDict()
        # Latch: protects the frame map itself (lookups, LRU order,
        # admission, eviction).  Held only for dictionary work, never
        # across a physical read.
        self._latch = watched_lock("BufferPool._latch")
        # Stripes: serialise *loading* of any one page so concurrent
        # misses on the same page do one disk read, not several.
        self._stripes = [
            watched_lock("BufferPool._stripes")
            for _ in range(lock_stripes)
        ]
        #: Optional :class:`repro.storage.faults.FaultInjector`
        #: consulted on every :meth:`fetch` — *before* the cache
        #: lookup, so faults hit warm-cache reads too (the pager's own
        #: injector only sees misses).
        self.fault_injector: "FaultInjector | None" = None

    # -- configuration -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        with self._latch:
            return self._capacity

    def resize(self, capacity: int) -> None:
        """Change capacity; evicts (writing back) if shrinking."""
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        with self._latch:
            self._capacity = capacity
            while len(self._frames) > self._capacity:
                # reprolint: disable=R10 resize runs on a quiesced pool, not serving
                self._evict_one_locked()

    # -- page access ---------------------------------------------------------

    def fetch(self, pager: Pager, page_no: int) -> bytearray:
        """The page buffer for ``page_no`` of ``pager``'s segment.

        Returns the *cached* buffer: mutations are visible to later
        fetches, but callers must pair mutations with
        :meth:`mark_dirty` for them to survive eviction.
        """
        key = (pager.name, page_no)
        if self.fault_injector is not None:
            self.fault_injector.fire("buffer.fetch", f"{pager.name}:{page_no}")
        self._stats.record_logical_read(pager.name)
        with self._latch:
            frame = self._frames.get(key)
            if frame is not None:
                self._frames.move_to_end(key)
                return frame.data
        stripe = self._stripes[hash(key) % len(self._stripes)]
        with stripe:
            # Double-check: another thread may have loaded the page
            # while we waited for the stripe.
            with self._latch:
                frame = self._frames.get(key)
                if frame is not None:
                    self._frames.move_to_end(key)
                    return frame.data
            # reprolint: disable=R10 single-flight: the stripe holds peers off the read
            data = pager.read_page(page_no)  # Counts the physical read.
            with self._latch:
                # reprolint: disable=R10 serving fetches only ever evict clean pages
                self._admit_locked(key, _Frame(data, pager))
            return data

    def put_new(self, pager: Pager, page_no: int, data: bytearray) -> None:
        """Install a freshly allocated page without reading from disk.

        Used right after :meth:`Pager.allocate`, whose zero-fill write
        already hit the file; the in-memory copy is marked dirty so the
        real contents reach disk on eviction/flush.
        """
        key = (pager.name, page_no)
        frame = _Frame(data, pager)
        frame.dirty = True
        with self._latch:
            # reprolint: disable=R10 put_new runs in the single-threaded build only
            self._admit_locked(key, frame)

    def mark_dirty(self, pager: Pager, page_no: int) -> None:
        """Flag a cached page as modified."""
        key = (pager.name, page_no)
        with self._latch:
            frame = self._frames.get(key)
            if frame is None:
                raise BufferPoolError(
                    f"page {page_no} of {pager.name} is not resident"
                )
            frame.dirty = True

    def drop(self, pager: Pager, page_no: int) -> None:
        """Forget a cached page *without* writing it back.

        Recovery and repair write page images straight through the
        pager (:meth:`Pager.write_page`); any stale frame — possibly
        dirty, possibly holding pre-crash bytes — must not overwrite
        the restored image on a later flush.  A no-op when the page is
        not resident.
        """
        with self._latch:
            self._frames.pop((pager.name, page_no), None)

    def drop_segment(self, name: str) -> None:
        """Forget every cached page of one segment *without* write-back.

        Used when a segment file is removed outright (clearing the
        stale staging of an aborted patch): a dirty frame surviving the
        unlink would resurrect the file on the next flush.
        """
        with self._latch:
            doomed = [key for key in self._frames if key[0] == name]
            for key in doomed:
                self._frames.pop(key)

    # -- maintenance ------------------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty page and empty the pool.

        This is the paper's 'flush the database buffer before each
        test': afterwards, all page touches are cold.
        """
        frame: _Frame
        with self._latch:
            for (name, page_no), frame in self._frames.items():
                if frame.dirty:
                    # reprolint: disable=R10 flush() is the paper's cold-cache reset
                    frame.pager.write_page(page_no, frame.data)
            self._frames.clear()

    def flush_dirty(self) -> None:
        """Write back dirty pages but keep the cache warm."""
        frame: _Frame
        with self._latch:
            for (name, page_no), frame in self._frames.items():
                if frame.dirty:
                    # reprolint: disable=R10 checkpoint runs between builds, not serving
                    frame.pager.write_page(page_no, frame.data)
                    frame.dirty = False

    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        with self._latch:
            return len(self._frames)

    # -- internals (the ``_locked`` suffix is a contract, checked by
    # reprolint rule R1: callers hold ``self._latch``) ----------------------

    def _admit_locked(self, key: tuple[str, int], frame: _Frame) -> None:
        if key in self._frames:  # Lost a race on another stripe: keep LRU.
            self._frames.move_to_end(key)
            return
        while len(self._frames) >= self._capacity:
            self._evict_one_locked()
        self._frames[key] = frame

    def _evict_one_locked(self) -> None:
        frame: _Frame
        key, frame = self._frames.popitem(last=False)
        if frame.dirty:
            frame.pager.write_page(key[1], frame.data)
