"""LRU buffer pool shared by every segment of a database.

The pool caches page buffers keyed by ``(segment name, page number)``.
A request that misses triggers a physical read through the segment's
pager; a hit costs only a logical read.  Dirty pages are written back
on eviction and on :meth:`BufferPool.flush`.

The paper's methodology — "the database and system buffer is flushed
before each test" — maps to calling :meth:`flush` before each measured
query, after which every first touch of a page is a disk access.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import BufferPoolError
from repro.storage.pager import Pager
from repro.storage.stats import DiskStats

__all__ = ["BufferPool", "DEFAULT_POOL_PAGES"]

#: Default pool capacity: 256 x 8 KiB = 2 MiB.
DEFAULT_POOL_PAGES = 256


class _Frame:
    __slots__ = ("data", "dirty", "pager")

    def __init__(self, data: bytearray, pager: Pager) -> None:
        self.data = data
        self.dirty = False
        self.pager = pager


class BufferPool:
    """A shared LRU page cache with write-back semantics."""

    def __init__(
        self, stats: DiskStats, capacity: int = DEFAULT_POOL_PAGES
    ) -> None:
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self._stats = stats
        self._capacity = capacity
        self._frames: OrderedDict[tuple[str, int], _Frame] = OrderedDict()

    # -- configuration -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of cached pages."""
        return self._capacity

    def resize(self, capacity: int) -> None:
        """Change capacity; evicts (writing back) if shrinking."""
        if capacity < 1:
            raise BufferPoolError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        while len(self._frames) > self._capacity:
            self._evict_one()

    # -- page access ---------------------------------------------------------

    def fetch(self, pager: Pager, page_no: int) -> bytearray:
        """The page buffer for ``page_no`` of ``pager``'s segment.

        Returns the *cached* buffer: mutations are visible to later
        fetches, but callers must pair mutations with
        :meth:`mark_dirty` for them to survive eviction.
        """
        key = (pager.name, page_no)
        self._stats.record_logical_read(pager.name)
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
            return frame.data
        data = pager.read_page(page_no)  # Counts the physical read.
        self._admit(key, _Frame(data, pager))
        return data

    def put_new(self, pager: Pager, page_no: int, data: bytearray) -> None:
        """Install a freshly allocated page without reading from disk.

        Used right after :meth:`Pager.allocate`, whose zero-fill write
        already hit the file; the in-memory copy is marked dirty so the
        real contents reach disk on eviction/flush.
        """
        key = (pager.name, page_no)
        frame = _Frame(data, pager)
        frame.dirty = True
        self._admit(key, frame)

    def mark_dirty(self, pager: Pager, page_no: int) -> None:
        """Flag a cached page as modified."""
        key = (pager.name, page_no)
        frame = self._frames.get(key)
        if frame is None:
            raise BufferPoolError(
                f"page {page_no} of {pager.name} is not resident"
            )
        frame.dirty = True

    # -- maintenance ------------------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty page and empty the pool.

        This is the paper's 'flush the database buffer before each
        test': afterwards, all page touches are cold.
        """
        for (name, page_no), frame in self._frames.items():
            if frame.dirty:
                frame.pager.write_page(page_no, frame.data)
        self._frames.clear()

    def flush_dirty(self) -> None:
        """Write back dirty pages but keep the cache warm."""
        for (name, page_no), frame in self._frames.items():
            if frame.dirty:
                frame.pager.write_page(page_no, frame.data)
                frame.dirty = False

    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        return len(self._frames)

    # -- internals -----------------------------------------------------------------

    def _admit(self, key: tuple[str, int], frame: _Frame) -> None:
        while len(self._frames) >= self._capacity:
            self._evict_one()
        self._frames[key] = frame

    def _evict_one(self) -> None:
        key, frame = self._frames.popitem(last=False)
        if frame.dirty:
            frame.pager.write_page(key[1], frame.data)
