"""Baseline query processors the paper compares against.

* :class:`~repro.baselines.pm_db.PMStore` — progressive mesh over the
  database with LOD-quadtree indexing and per-node B+-tree fetches
  (the paper's "PM" series);
* the HDoV-tree lives in :mod:`repro.index.hdov` (it is both an index
  and its own query processor, as in the original system).
"""

from repro.baselines.pm_db import PMQueryResult, PMStore

__all__ = ["PMQueryResult", "PMStore"]
