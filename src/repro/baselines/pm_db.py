"""The PM baseline: selective refinement over the database.

This is the paper's main comparator ("The PM approach is implemented
following the algorithms in [9]" with the LOD-quadtree of [20], which
was "reported as having better performance than other spatial indexes
for MTM data").  Concretely:

* PM node records live in a heap file, Hilbert-clustered in (x, y);
* a B+-tree maps node id -> RID (the per-node fetch path);
* the LOD-quadtree indexes **every** node as the point
  ``(x, y, e)`` — internal nodes included, footprints ignored, which
  is precisely the weakness the paper attributes to [20];
* a query converts to a 3D range query with the cube
  ``r x [e, max LOD]`` (paper Figure 3), then performs selective
  refinement from the PM roots; every node the traversal needs that
  the cube did not return — coarse ancestors whose own point lies
  outside ``r``, and all the *cut* nodes themselves, whose LOD is
  below the cube — is fetched individually through the B+-tree.

Disk accesses accumulate in the shared
:class:`~repro.storage.stats.DiskStats` exactly as for Direct Mesh.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import InvariantError, QueryError, StorageError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Box3, Rect
from repro.geometry.spacefill import hilbert_key, normalized_quantizer
from repro.index.btree import BPlusTree
from repro.index.quadtree import LodQuadtree
from repro.mesh.progressive import PMNode, ProgressiveMesh
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.record import decode_pm_node, encode_pm_node

__all__ = ["PMStore", "PMQueryResult"]

_META_FILE = "pm_meta.json"


@dataclass
class PMQueryResult:
    """Result of a PM-over-database query.

    Attributes:
        nodes: the approximation nodes (the cut), keyed by id.
        retrieved_from_index: records returned by the quadtree cube.
        fetched_individually: records fetched one-by-one through the
            B+-tree during refinement (ancestors outside the ROI and
            cut nodes below the cube).
        traversed: internal nodes the refinement expanded — the
            connectivity-only retrieval volume DM eliminates.
    """

    nodes: dict[int, PMNode]
    retrieved_from_index: int = 0
    fetched_individually: int = 0
    traversed: int = 0

    def __len__(self) -> int:
        return len(self.nodes)


class PMStore:
    """Progressive-mesh data resident in a :class:`Database`."""

    def __init__(
        self,
        database: Database,
        heap: HeapFile,
        btree: BPlusTree,
        quadtree: LodQuadtree,
        max_lod: float,
        roots: list[int],
    ) -> None:
        self.database = database
        self.heap = heap
        self.btree = btree
        self.quadtree = quadtree
        self.max_lod = max_lod
        self.roots = roots

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        pm: ProgressiveMesh,
        database: Database,
        prefix: str = "pm",
    ) -> "PMStore":
        """Materialise the PM tables and indexes."""
        if not pm.is_normalized:
            raise QueryError("progressive mesh must be normalised")
        heap = HeapFile(database.segment(f"{prefix}_nodes"))
        btree = BPlusTree(database.segment(f"{prefix}_btree"))
        quadtree = LodQuadtree(database.segment(f"{prefix}_qt"))

        # Cluster by a coarse Hilbert tile first and LOD within the
        # tile: the quadtree cube query then reads each tile's upper
        # LOD band from (near-)contiguous pages.
        bounds = Rect.from_points(n for n in pm.nodes)
        tile_bits = 4
        quantize = normalized_quantizer(bounds, bits=tile_bits)
        ordered = sorted(
            pm.nodes,
            key=lambda n: (
                hilbert_key(*quantize(n.x, n.y), bits=tile_bits),
                n.e,
            ),
        )
        id_to_rid: list[tuple[int, int]] = []
        points: list[tuple[float, float, float, int]] = []
        for node in ordered:
            rid = heap.insert(encode_pm_node(node))
            id_to_rid.append((node.id, rid))
            points.append((node.x, node.y, node.e, rid))
        btree.bulk_load(sorted(id_to_rid))
        quadtree.bulk_load(points)

        meta = {"max_lod": pm.max_lod(), "roots": pm.roots}
        with open(database.path / f"{prefix}_{_META_FILE}", "w",
                  encoding="ascii") as f:
            json.dump(meta, f)
        database.buffer.flush_dirty()
        return cls(database, heap, btree, quadtree, meta["max_lod"],
                   meta["roots"])

    @classmethod
    def open(cls, database: Database, prefix: str = "pm") -> "PMStore":
        """Open a previously built store."""
        meta_path = database.path / f"{prefix}_{_META_FILE}"
        if not meta_path.exists():
            raise StorageError(f"no PM store at {meta_path}")
        with open(meta_path, "r", encoding="ascii") as f:
            meta = json.load(f)
        return cls(
            database,
            HeapFile(database.segment(f"{prefix}_nodes")),
            BPlusTree(database.segment(f"{prefix}_btree")),
            LodQuadtree(database.segment(f"{prefix}_qt")),
            meta["max_lod"],
            meta["roots"],
        )

    # -- record access ----------------------------------------------------------

    def fetch_by_id(self, node_id: int) -> PMNode:
        """Point-fetch one node through the B+-tree (the costly path)."""
        rid = self.btree.get(node_id)
        if rid is None:
            raise StorageError(f"PM node {node_id} missing from the id index")
        return decode_pm_node(self.heap.read(rid))

    # -- queries -------------------------------------------------------------------

    def uniform_query(self, roi: Rect, lod: float) -> PMQueryResult:
        """Viewpoint-independent ``Q(M, r, e)`` by selective refinement."""
        return self._query(roi, lod_floor=lod, required=lambda x, y: lod)

    def viewdep_query(self, plane: QueryPlane) -> PMQueryResult:
        """Viewpoint-dependent query by selective refinement.

        The quadtree cube spans ``[e_min, max LOD]`` (the paper's PM
        processing has no top-plane reduction — that is DM's
        single-base advantage)."""
        return self._query(
            plane.roi,
            lod_floor=plane.e_min,
            required=plane.required_lod,
            plane=plane,
        )

    def _query(
        self,
        roi: Rect,
        lod_floor: float,
        required,
        plane: QueryPlane | None = None,
    ) -> PMQueryResult:
        cube = Box3.from_rect(roi, lod_floor, self.max_lod + 1.0)
        hits = self.quadtree.range_search(cube)
        # Read the candidate records page-ordered.
        rids = [rid for *_xye, rid in hits]
        records: dict[int, PMNode] = {}
        for payload in self.heap.read_many(rids):
            node = decode_pm_node(payload)
            records[node.id] = node
        result = PMQueryResult(nodes={}, retrieved_from_index=len(records))

        def resolve(node_id: int) -> PMNode:
            node = records.get(node_id)
            if node is None:
                node = self.fetch_by_id(node_id)
                records[node_id] = node
                result.fetched_individually += 1
            return node

        stack = list(self.roots)
        while stack:
            node = resolve(stack.pop())
            footprint = node.footprint
            if footprint is None:
                raise InvariantError(
                    "stored PM node has no footprint", node=node.id
                )
            if not footprint.intersects(roi):
                continue
            if roi.contains_point(node.x, node.y) and node.interval_contains(
                required(node.x, node.y)
            ):
                result.nodes[node.id] = node
            if plane is None:
                descend = node.e > lod_floor
            else:
                # A descendant can still qualify anywhere the plane
                # demands finer detail than this node provides.
                req_min, _ = plane.lod_range_over(footprint)
                descend = node.e > req_min
            if descend and not node.is_leaf:
                result.traversed += 1
                stack.append(node.child1)
                stack.append(node.child2)
        return result
