"""Runtime lock-order witness: instrumented locks behind an env gate.

The static lockset analysis (:mod:`repro.analysis.locksets`) infers a
lock-order graph from source; this module measures the *actual* one.
With ``REPRO_LOCKWATCH=1`` set, :func:`watched_lock` returns a
:class:`WatchedLock` that records, per thread, every ordered pair
``(held, acquired)`` observed at acquisition time.  Without the env
var it returns a plain ``threading.Lock`` — zero overhead in
production, and construction sites stay one-liners:

    self._latch = watched_lock("BufferPool._latch")

Lock names follow the static analysis's convention exactly
(``ClassName._attr``; one name for a whole stripe list), so the
dynamic graph is directly comparable: CI runs the stress suites under
``REPRO_LOCKWATCH=1`` and asserts the observed graph is **acyclic**
and a **subgraph** of the static one (``scripts/lockwatch_check.py``).
A dynamic edge missing from the static graph means the call-graph
inference went blind somewhere — that is a bug in the analysis, not
in the code under test.

With ``REPRO_LOCKWATCH_OUT=<path>`` also set, the recorder merges its
edge counts into that JSON file at interpreter exit, so multi-process
suites accumulate into one graph.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Iterable, Union

__all__ = [
    "ENV_FLAG",
    "ENV_OUT",
    "LockWatch",
    "WatchedLock",
    "enabled",
    "find_cycle",
    "reset",
    "watch",
    "watched_lock",
]

ENV_FLAG = "REPRO_LOCKWATCH"
ENV_OUT = "REPRO_LOCKWATCH_OUT"


def enabled() -> bool:
    """True when lock instrumentation is switched on via the env."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class LockWatch:
    """Accumulates observed ``(held, acquired)`` lock-order pairs."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._edges: dict[tuple[str, str], int] = {}
        self._locks: set[str] = set()
        self._tls = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def note_acquire(self, name: str) -> None:
        stack = self._stack()
        pairs = [
            (held, name) for held in stack if held != name
        ]
        stack.append(name)
        with self._guard:
            self._locks.add(name)
            for pair in pairs:
                self._edges[pair] = self._edges.get(pair, 0) + 1

    def note_release(self, name: str) -> None:
        stack = self._stack()
        # Remove the innermost occurrence; tolerate foreign releases.
        for position in range(len(stack) - 1, -1, -1):
            if stack[position] == name:
                del stack[position]
                break

    def edges(self) -> dict[tuple[str, str], int]:
        with self._guard:
            return dict(self._edges)

    def locks(self) -> set[str]:
        with self._guard:
            return set(self._locks)

    def as_json(self) -> dict[str, object]:
        with self._guard:
            return {
                "version": 1,
                "locks": sorted(self._locks),
                "edges": [
                    [src, dst, count]
                    for (src, dst), count in sorted(self._edges.items())
                ],
            }

    def dump(self, path: str) -> None:
        """Merge this recorder's graph into ``path`` (atomic write).

        Multiple processes dumping to the same file accumulate: edge
        counts add, lock sets union.  A missing or corrupt existing
        file is treated as empty rather than fatal.
        """
        data = self.as_json()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            locks = set(data["locks"]) | set(existing.get("locks", []))
            merged: dict[tuple[str, str], int] = {
                (src, dst): count for src, dst, count in data["edges"]
            }
            for entry in existing.get("edges", []):
                if not (isinstance(entry, list) and len(entry) == 3):
                    continue
                src, dst, count = entry
                merged[(src, dst)] = merged.get((src, dst), 0) + int(count)
            data = {
                "version": 1,
                "locks": sorted(locks),
                "edges": [
                    [src, dst, count]
                    for (src, dst), count in sorted(merged.items())
                ],
            }
        temp = f"{path}.tmp.{os.getpid()}"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=1, sort_keys=True)
        os.replace(temp, path)


class WatchedLock:
    """A ``threading.Lock`` that reports its acquisition order."""

    __slots__ = ("_inner", "_watchman", "name")

    def __init__(self, name: str, watchman: LockWatch) -> None:
        self._inner = threading.Lock()
        self._watchman = watchman
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # The pair is recorded *after* a successful acquire so a
        # timed-out attempt leaves no trace.
        # reprolint: disable=R6 forwards to the inner lock; pairing is the caller's duty
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watchman.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._watchman.note_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        # reprolint: disable=R6 context-manager protocol: __exit__ is the paired release
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()


_WATCH: LockWatch | None = None
_WATCH_GUARD = threading.Lock()


def watch() -> LockWatch:
    """The process-wide recorder (created on first use).

    Registers the atexit merge-dump when ``REPRO_LOCKWATCH_OUT``
    names a destination file.
    """
    global _WATCH
    if _WATCH is None:
        with _WATCH_GUARD:
            if _WATCH is None:
                recorder = LockWatch()
                out = os.environ.get(ENV_OUT, "")
                if out:
                    atexit.register(recorder.dump, out)
                _WATCH = recorder
    return _WATCH


def reset() -> None:
    """Drop the recorder (tests only; no atexit deregistration)."""
    global _WATCH
    with _WATCH_GUARD:
        _WATCH = None


def watched_lock(name: str) -> Union[threading.Lock, WatchedLock]:
    """A lock named for the static analysis's ``ClassName._attr``.

    Plain ``threading.Lock`` unless ``REPRO_LOCKWATCH=1``: the gate is
    evaluated per construction, so a test can flip the env var and
    build an instrumented engine in-process.
    """
    if not enabled():
        return threading.Lock()
    return WatchedLock(name, watch())


def find_cycle(edges: Iterable[tuple[str, str]]) -> list[str] | None:
    """A lock cycle in ``edges`` (as a node list), or None if acyclic."""
    successors: dict[str, list[str]] = {}
    for src, dst in edges:
        successors.setdefault(src, []).append(dst)
    for adjacency in successors.values():
        adjacency.sort()

    visiting: dict[str, int] = {}  # 0 = in progress, 1 = done.
    path: list[str] = []

    def visit(node: str) -> list[str] | None:
        visiting[node] = 0
        path.append(node)
        for nxt in successors.get(node, []):
            state = visiting.get(nxt)
            if state == 0:
                return path[path.index(nxt) :]
            if state is None:
                cycle = visit(nxt)
                if cycle is not None:
                    return cycle
        path.pop()
        visiting[node] = 1
        return None

    for root in sorted(successors):
        if root not in visiting:
            cycle = visit(root)
            if cycle is not None:
                return cycle
    return None
