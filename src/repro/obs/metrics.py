"""Thread-safe counters and histograms for the serving path.

The storage layer already counts page traffic globally
(:class:`~repro.storage.stats.DiskStats`); this module is the layer
above it: named :class:`Counter` and :class:`Histogram` instruments
collected in a :class:`MetricsRegistry`, safe to update from the query
engine's worker threads.  The engine records R*-tree nodes visited,
pages read, cache hit-rates and per-stage wall time here;
:class:`~repro.storage.trace.IOTracer` and the benchmark runner can
plug into the same registry so one report covers a whole run.

Instruments are cheap (one lock acquisition per update) and never
raise from the hot path; reading them returns immutable snapshots.
"""

from __future__ import annotations

import threading

from repro.obs.lockwatch import watched_lock
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "METRIC_FAMILIES",
    "METRIC_NAMES",
    "METRIC_PREFIXES",
    "MetricsRegistry",
]

#: Samples retained per histogram for percentile estimation.  Updates
#: past the cap still feed count/total/min/max; percentiles are then
#: computed over the retained prefix.
DEFAULT_MAX_SAMPLES = 8192

#: Every metric name the library emits, declared up front.  A typo'd
#: name does not fail at runtime — :class:`MetricsRegistry` happily
#: creates instruments on first use, silently forking a series — so
#: the declaration is enforced *statically*: ``reprolint`` rule R5
#: (:mod:`repro.analysis`) flags any literal instrument name that is
#: not listed here.  Add the name to this set in the same change that
#: introduces the instrument.
METRIC_NAMES: frozenset[str] = frozenset(
    {
        # -- query engine --------------------------------------------------
        "engine.requests",
        "engine.batches",
        "engine.range_queries",
        "engine.dedup_shared",
        "engine.retries",
        "engine.errors",
        "engine.demotions",
        "engine.deadline_misses",
        "engine.degraded",
        "engine.corruptions",
        "engine.epoch",
        # -- admission control (CostGovernor) ------------------------------
        "engine.admitted",
        "engine.shed",
        "engine.overload_degraded",
        "engine.index_s",
        "engine.fetch_s",
        "engine.filter_s",
        "engine.query_s",
        "engine.nodes_visited",
        "engine.pages_read",
        "engine.cache_hit_rate",
        "engine.clusters_touched",
        # -- semantic result cache -----------------------------------------
        "cache.hits",
        "cache.misses",
        "cache.subsume_hits",
        "cache.insertions",
        "cache.evictions",
        "cache.bytes",
        "cache.entries",
        "cache.region_invalidations",
        # -- benchmark harness ---------------------------------------------
        "bench.cold_query_s",
        "bench.batch_s",
        # -- open-loop SLO serving -----------------------------------------
        "slo.estimated_cost",
        "slo.inflight_cost",
        "slo.queue_depth",
        "slo.latency_s",
        "slo.tenant_throttled",
        # -- progressive-transmission sessions -----------------------------
        "session.updates",
        "session.errors",
        "session.resyncs",
        "session.patch_resyncs",
        "session.added",
        "session.removed",
        "session.bytes_wire",
        "session.frame_bytes",
        "session.churn",
        "session.active",
        # -- cluster fast path ----------------------------------------------
        "cluster.decode_hits",
        "cluster.decode_misses",
        "cluster.bytes",
        "cluster.entries",
        "cluster.evictions",
        "cluster.region_invalidations",
        # -- storage integrity ---------------------------------------------
        "storage.crc_failures",
        "storage.cluster_reads",
        "fsck.pages_scanned",
        "fsck.pages_corrupt",
        "fsck.pages_repaired",
        "fsck.pages_quarantined",
        "fsck.orphan_segments",
    }
)

#: Prefixes for metric families whose full name is built at runtime
#: (e.g. per-segment I/O counters).  A dynamically formatted name must
#: start with one of these; rule R5 checks the constant head of
#: f-strings against this set.
METRIC_PREFIXES: frozenset[str] = frozenset(
    {
        "io.reads.",
    }
)

#: The metric *families* (the segment before the first dot) names may
#: belong to.  Every entry of :data:`METRIC_NAMES` and
#: :data:`METRIC_PREFIXES` must use one of these heads and the
#: ``family.metric_name`` grammar — enforced statically by
#: ``reprolint`` rule R8, so a registry addition cannot smuggle in a
#: misspelt family (``slo`` vs ``sol``) that would dodge dashboards
#: grouping by family.
METRIC_FAMILIES: frozenset[str] = frozenset(
    {
        "bench",
        "cache",
        "cluster",
        "engine",
        "fsck",
        "io",
        "session",
        "slo",
        "storage",
    }
)


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = watched_lock("Counter._lock")
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A thread-safe point-in-time value (can go up and down).

    Counters are monotone; a gauge tracks a level — the semantic
    cache's resident bytes, a pool's occupancy.  ``set`` overwrites,
    ``add`` adjusts by a (possibly negative) delta.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = watched_lock("Gauge._lock")
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by ``delta`` (may be negative)."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        """Current level."""
        with self._lock:
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable summary of a histogram's observations.

    Tail percentiles (``p99``/``p999``) are estimated over the
    retained samples like ``p50``/``p95``; with fewer than ~1000
    observations ``p999`` collapses toward ``max``, which is the
    honest answer for a thin tail.
    """

    count: int
    total: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float = 0.0
    p999: float = 0.0

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class Histogram:
    """A thread-safe distribution of float observations.

    Keeps exact count/total/min/max forever and up to
    ``max_samples`` raw samples for percentile estimation.
    """

    __slots__ = ("_count", "_lock", "_max", "_max_samples", "_min",
                 "_samples", "_total")

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        self._lock = watched_lock("Histogram._lock")
        self._max_samples = max_samples
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self._max_samples:
                self._samples.append(value)

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @staticmethod
    def _percentile_of(samples: list[float], p: float) -> float:
        """The ``p``-th percentile of an already-sorted sample list."""
        if not samples:
            return 0.0
        rank = (p / 100.0) * (len(samples) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return samples[lo] * (1 - frac) + samples[hi] * frac

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) over retained samples."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            samples = sorted(self._samples)
        return self._percentile_of(samples, p)

    def snapshot(self) -> HistogramSnapshot:
        """An immutable summary (zeroes when empty).

        Count, total, min, max, *and* the percentile samples are all
        read in one critical section, so a snapshot taken while other
        threads observe never mixes two states (e.g. a count that
        includes an observation whose sample the percentiles miss).
        """
        with self._lock:
            if self._count == 0:
                return HistogramSnapshot(0, 0.0, 0.0, 0.0, 0.0, 0.0)
            count, total = self._count, self._total
            lo, hi = self._min, self._max
            samples = sorted(self._samples)
        return HistogramSnapshot(
            count,
            total,
            lo,
            hi,
            self._percentile_of(samples, 50),
            self._percentile_of(samples, 95),
            self._percentile_of(samples, 99),
            self._percentile_of(samples, 99.9),
        )


class MetricsRegistry:
    """A named collection of counters and histograms.

    Instruments are created on first use and shared afterwards, so
    independent components can contribute to the same metric by name::

        registry = MetricsRegistry()
        registry.counter("engine.requests").inc()
        with registry.timer("engine.query_s"):
            run_query()
        print(registry.report())
    """

    def __init__(self) -> None:
        self._lock = watched_lock("MetricsRegistry._lock")
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = Counter()
                self._counters[name] = counter
            return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = Gauge()
                self._gauges[name] = gauge
            return gauge

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram()
                self._histograms[name] = histogram
            return histogram

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block into the histogram ``name`` (in seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    # -- reading -----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Name -> value for every counter."""
        with self._lock:
            items = list(self._counters.items())
        return {name: counter.value for name, counter in items}

    def gauges(self) -> dict[str, float]:
        """Name -> value for every gauge."""
        with self._lock:
            items = list(self._gauges.items())
        return {name: gauge.value for name, gauge in items}

    def histograms(self) -> dict[str, HistogramSnapshot]:
        """Name -> snapshot for every histogram."""
        with self._lock:
            items = list(self._histograms.items())
        return {name: hist.snapshot() for name, hist in items}

    def report(self) -> str:
        """A human-readable dump of every instrument."""
        lines = ["metrics", "-------"]
        for name, value in sorted(self.counters().items()):
            lines.append(f"{name:<28} {value}")
        for name, value in sorted(self.gauges().items()):
            lines.append(f"{name:<28} {value:.6g}")
        for name, snap in sorted(self.histograms().items()):
            lines.append(
                f"{name:<28} n={snap.count} mean={snap.mean:.6g} "
                f"p50={snap.p50:.6g} p95={snap.p95:.6g} max={snap.max:.6g}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (names are re-created on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
