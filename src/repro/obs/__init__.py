"""Observability: thread-safe metrics primitives for the query engine."""

from repro.obs.metrics import (
    Counter,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
]
