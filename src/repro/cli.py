"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``build``   — generate (or load) a terrain, build the multiresolution
  store into a database directory;
* ``query``   — run a viewpoint-independent query against a built
  database and export/render the resulting mesh;
* ``viewdep`` — run a viewpoint-dependent (tilted-plane) query;
* ``bench-serve`` — replay a synthetic query workload through the
  concurrent engine at several worker counts (throughput baseline);
* ``bench-slo`` — open-loop SLO harness: Poisson arrivals at a fixed
  offered rate (zipfian hotspots or flight-path sessions), scored as
  goodput-under-SLO with p50/p99/p999 latency; with admission control
  on (the default) overload degrades or sheds instead of queueing;
* ``bench-session`` — progressive-transmission harness: the
  flight-path workload as delta sessions (varint-coded wire frames)
  versus naive re-query, scored as bytes-on-wire and per-frame
  latency, with every frame decoded client-side and verified against
  the engine's answer;
* ``fsck``    — verify (and optionally repair) storage integrity:
  every page of every segment is checksum-verified and the R*-tree
  walked structurally; ``--repair`` restores corrupt pages from a
  committed WAL, ``--archive`` snapshots one, ``--inject`` runs a
  seeded corruption drill;
* ``info``    — describe a built database (segments, pages, metadata).

The CLI is a thin veneer over the public API; anything beyond quick
inspection should use the library directly (see ``examples/``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import DirectMeshStore, build_connection_lists
from repro.errors import InvariantError, ReproError
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.mesh import SimplifyConfig, simplify_to_pm
from repro.storage import Database
from repro.terrain import DEM, dataset_by_name, read_esri_ascii, write_obj
from repro.viz import render_points

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _worker_counts(spec: str) -> list[int]:
    """Parse ``--workers`` values like ``1,2,4``."""
    return [int(w) for w in spec.split(",")]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Direct Mesh multiresolution terrain store (ICDE'04 reproduction)",
    )
    sub = parser.add_subparsers(required=True)

    build = sub.add_parser("build", help="build a terrain database")
    build.add_argument("database", help="database directory to create")
    source = build.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        choices=["foothills", "crater"],
        default="foothills",
        help="synthetic dataset to generate",
    )
    source.add_argument(
        "--dem", metavar="FILE", help="ESRI ASCII raster to ingest instead"
    )
    source.add_argument(
        "--from-pm",
        metavar="FILE",
        help="load a prebuilt progressive mesh (.pmz) instead of simplifying",
    )
    build.add_argument(
        "--points", type=int, default=10_000, help="terrain sample count"
    )
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--compress",
        action="store_true",
        help="store connection lists delta+varint compressed",
    )
    build.add_argument(
        "--save-pm",
        metavar="FILE",
        help="also save the progressive mesh as a .pmz interchange file",
    )
    build.set_defaults(handler=_cmd_build)

    query = sub.add_parser("query", help="viewpoint-independent query")
    query.add_argument("database")
    query.add_argument(
        "--roi",
        type=float,
        nargs=4,
        metavar=("MINX", "MINY", "MAXX", "MAXY"),
        help="region of interest (defaults to the full extent)",
    )
    query.add_argument(
        "--lod",
        type=float,
        required=True,
        help="LOD threshold (approximation-error units)",
    )
    query.add_argument("--obj", metavar="FILE", help="export mesh as OBJ")
    query.add_argument(
        "--render", action="store_true", help="ASCII-render the result"
    )
    query.set_defaults(handler=_cmd_query)

    viewdep = sub.add_parser("viewdep", help="viewpoint-dependent query")
    viewdep.add_argument("database")
    viewdep.add_argument("--roi", type=float, nargs=4, required=True,
                         metavar=("MINX", "MINY", "MAXX", "MAXY"))
    viewdep.add_argument("--emin", type=float, required=True)
    viewdep.add_argument("--emax", type=float, required=True)
    viewdep.add_argument(
        "--direction", type=float, nargs=2, default=(0.0, 1.0),
        metavar=("DX", "DY"),
        help="unit vector pointing away from the viewer",
    )
    viewdep.add_argument("--obj", metavar="FILE")
    viewdep.add_argument("--render", action="store_true")
    viewdep.set_defaults(handler=_cmd_viewdep)

    exp = sub.add_parser(
        "explain", help="show the query plan (and optionally execute)"
    )
    exp.add_argument("database")
    exp.add_argument("--roi", type=float, nargs=4, required=True,
                     metavar=("MINX", "MINY", "MAXX", "MAXY"))
    exp.add_argument("--lod", type=float, help="uniform LOD")
    exp.add_argument("--emin", type=float, help="viewpoint-dependent e_min")
    exp.add_argument("--emax", type=float, help="viewpoint-dependent e_max")
    exp.add_argument("--execute", action="store_true",
                     help="run the query and attach actual counters")
    exp.set_defaults(handler=_cmd_explain)

    serve = sub.add_parser(
        "bench-serve",
        help="throughput-benchmark the concurrent query engine",
    )
    serve.add_argument("database")
    serve.add_argument(
        "--requests", type=int, default=64, help="queries per batch"
    )
    serve.add_argument(
        "--workers",
        type=_worker_counts,
        default=[1, 2, 4],
        metavar="N,N,...",
        help="comma-separated worker counts to sweep (default 1,2,4)",
    )
    serve.add_argument(
        "--mode",
        choices=["uniform", "viewdep", "mixed"],
        default="uniform",
        help="request mix to generate",
    )
    serve.add_argument(
        "--roi-frac",
        type=float,
        default=0.15,
        help="ROI edge length as a fraction of the terrain extent",
    )
    serve.add_argument(
        "--dedup",
        choices=["off", "exact", "subsume"],
        default="exact",
        help="batch deduplication policy",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--pool-pages",
        type=int,
        default=64,
        help="buffer pool capacity (small pools keep the workload I/O bound)",
    )
    serve.add_argument(
        "--io-latency",
        type=float,
        default=0.0,
        help="simulated seconds per physical page read (0 = off)",
    )
    serve.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="probability of an injected transient error per physical "
        "page read (exercises the retry path; 0 = off)",
    )
    serve.add_argument(
        "--corrupt-rate",
        type=float,
        default=0.0,
        help="probability of injected page corruption per physical "
        "page read (bitflip/torn/zero; exercises checksum "
        "verification and the quarantine path; 0 = off)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds (uniform requests "
        "degrade to the base mesh on a miss; default: none)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=4,
        help="retry attempts per request for injected transient errors",
    )
    serve.add_argument(
        "--cache-mb",
        type=float,
        default=0.0,
        help="semantic result cache budget in MiB (0 = cache off); "
        "cached cubes answer subsumed queries with no index/disk I/O",
    )
    serve.add_argument(
        "--prefetch-e",
        type=float,
        default=0.0,
        help="prefetch inflation along the LOD axis (absolute units): "
        "cache misses probe a cube taller by this much each way so "
        "nearby LODs hit next time",
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="replay the batch this many times per sweep (a repeated "
        "workload is what warms the semantic cache)",
    )
    serve.add_argument(
        "--no-vectorized",
        action="store_true",
        help="use the scalar per-record filter path instead of the "
        "columnar numpy kernels (A/B comparison)",
    )
    serve.add_argument(
        "--no-clustered",
        action="store_true",
        help="serve through the per-node R*-tree path instead of the "
        "cluster fast path (A/B comparison; stores without a cluster "
        "section always serve per-node)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="print the full metrics report of the last sweep",
    )
    serve.set_defaults(handler=_cmd_bench_serve)

    slo = sub.add_parser(
        "bench-slo",
        help="open-loop SLO load harness (Poisson arrivals, admission "
        "control)",
    )
    slo.add_argument("database")
    slo.add_argument(
        "--mode",
        choices=["zipf", "flightpath", "mixed"],
        default="zipf",
        help="workload shape: zipfian hotspots, correlated flight-path "
        "sessions, or an even interleave",
    )
    slo.add_argument(
        "--requests", type=int, default=400, help="arrivals to generate"
    )
    rate = slo.add_mutually_exclusive_group()
    rate.add_argument(
        "--offered-rate",
        type=float,
        default=None,
        help="offered arrival rate in requests/second",
    )
    rate.add_argument(
        "--rate-multiple",
        type=float,
        default=2.0,
        help="offered rate as a multiple of the measured closed-loop "
        "capacity (default 2.0; ignored with --offered-rate)",
    )
    slo.add_argument(
        "--workers", type=int, default=4, help="engine worker threads"
    )
    slo.add_argument(
        "--slo-ms",
        type=float,
        default=50.0,
        help="latency budget goodput is scored against (from scheduled "
        "arrival, so queue wait counts)",
    )
    slo.add_argument("--tenants", type=int, default=4)
    slo.add_argument("--hotspots", type=int, default=64)
    slo.add_argument("--sessions", type=int, default=8)
    slo.add_argument(
        "--roi-frac",
        type=float,
        default=0.15,
        help="ROI edge length as a fraction of the terrain extent",
    )
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument(
        "--budget-da",
        type=float,
        default=None,
        help="admission budget in estimated disk accesses (default: "
        "auto — twice the workers' mean-cost working set)",
    )
    slo.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="per-tenant token refill in cost units/second (default: "
        "per-tenant fairness off)",
    )
    slo.add_argument(
        "--no-admission",
        action="store_true",
        help="run without a CostGovernor (the latency-collapse control "
        "arm)",
    )
    slo.add_argument(
        "--pool-pages",
        type=int,
        default=64,
        help="buffer pool capacity (small pools keep the workload I/O "
        "bound)",
    )
    slo.add_argument(
        "--io-latency",
        type=float,
        default=0.0,
        help="simulated seconds per physical page read (0 = off)",
    )
    slo.add_argument(
        "--cache-mb",
        type=float,
        default=0.0,
        help="semantic result cache budget in MiB (0 = cache off)",
    )
    slo.add_argument(
        "--json",
        metavar="FILE",
        help="write the schema-versioned report JSON here",
    )
    slo.add_argument(
        "--metrics",
        action="store_true",
        help="print the full metrics report after the run",
    )
    slo.set_defaults(handler=_cmd_bench_slo)

    session = sub.add_parser(
        "bench-session",
        help="delta-session transmission harness (bytes-on-wire vs "
        "naive re-query)",
    )
    session.add_argument("database")
    session.add_argument(
        "--frames", type=int, default=200, help="total frames to stream"
    )
    session.add_argument(
        "--sessions",
        type=int,
        default=4,
        help="concurrent viewer sessions the frames interleave over",
    )
    session.add_argument("--tenants", type=int, default=4)
    session.add_argument(
        "--roi-frac",
        type=float,
        default=0.35,
        help="ROI edge length as a fraction of the terrain extent",
    )
    session.add_argument(
        "--step-frac",
        type=float,
        default=0.05,
        help="camera step per frame as a fraction of the ROI edge "
        "(small steps = warm overlapping frames)",
    )
    session.add_argument(
        "--lod-breathe",
        type=float,
        default=0.05,
        help="amplitude of the per-frame LOD oscillation (0 = fixed "
        "LOD)",
    )
    session.add_argument(
        "--workers", type=int, default=4, help="engine worker threads"
    )
    session.add_argument("--seed", type=int, default=0)
    session.add_argument(
        "--pool-pages",
        type=int,
        default=64,
        help="buffer pool capacity",
    )
    session.add_argument(
        "--io-latency",
        type=float,
        default=0.0,
        help="simulated seconds per physical page read (0 = off)",
    )
    session.add_argument(
        "--cache-mb",
        type=float,
        default=0.0,
        help="semantic result cache budget in MiB (0 = cache off)",
    )
    session.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-frame client-side decode check",
    )
    session.add_argument(
        "--json",
        metavar="FILE",
        help="write the schema-versioned report JSON here",
    )
    session.add_argument(
        "--metrics",
        action="store_true",
        help="print the delta arm's metrics report after the run",
    )
    session.set_defaults(handler=_cmd_bench_session)

    fsck = sub.add_parser(
        "fsck",
        help="verify (and optionally repair) storage integrity",
    )
    fsck.add_argument("database")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="restore corrupt pages from a committed write-ahead log "
        "and quarantine what it cannot restore",
    )
    fsck.add_argument(
        "--archive",
        action="store_true",
        help="snapshot every page into a committed WAL (a repair "
        "source for later drills) before scrubbing",
    )
    fsck.add_argument(
        "--inject",
        type=int,
        default=0,
        metavar="N",
        help="corruption drill: damage N random pages before the "
        "scrub (seeded; the scrub must then find exactly N)",
    )
    fsck.add_argument(
        "--kind",
        choices=["bitflip", "torn", "zero"],
        default=None,
        help="restrict --inject to one corruption kind (default: mix)",
    )
    fsck.add_argument("--seed", type=int, default=0)
    fsck.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of text",
    )
    fsck.set_defaults(handler=_cmd_fsck)

    info = sub.add_parser("info", help="describe a built database")
    info.add_argument("database")
    info.add_argument(
        "--verify",
        action="store_true",
        help="run integrity verification across heap/index/btree",
    )
    info.set_defaults(handler=_cmd_info)
    return parser


def _cmd_build(args) -> int:
    if args.from_pm:
        from repro.mesh.pmfile import load_pm

        pm, connections = load_pm(args.from_pm)
        if connections is None:
            connections = build_connection_lists(pm)
    elif args.dem:
        field = read_esri_ascii(args.dem)
        mesh = DEM(field, Path(args.dem).stem).to_scattered_trimesh(
            args.points, seed=args.seed
        )
        pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
        pm.normalize_lod()
        connections = build_connection_lists(pm)
    else:
        dataset = dataset_by_name(args.dataset, args.points, seed=args.seed or None)
        pm = dataset.pm
        connections = dataset.connections
    if args.save_pm:
        from repro.mesh.pmfile import save_pm

        save_pm(args.save_pm, pm, connections)
        print(f"saved progressive mesh to {args.save_pm}")
    with Database(args.database) as db:
        with db.atomic():  # Crash-safe: a killed build never corrupts.
            store = DirectMeshStore.build(
                pm, db, connections, compress_connections=args.compress
            )
        report = store.build_report
        if report is None:
            raise InvariantError("freshly built store has no build report")
        print(
            f"built {report.n_nodes} nodes: {report.heap_pages} data pages, "
            f"{report.index_pages} index pages, "
            f"avg {report.avg_connections:.1f} connections/node"
        )
        print(f"max LOD: {store.max_lod:.3f}")
    return 0


def _open(args) -> tuple[Database, DirectMeshStore]:
    db = Database(args.database)
    return db, DirectMeshStore.open(db)


def _roi_or_extent(args, store: DirectMeshStore) -> Rect:
    if args.roi:
        return Rect(*args.roi)
    space = store.rtree.data_space
    if space is None:
        raise ReproError("database is empty")
    return space.rect


def _finish(result, args, db) -> int:
    print(
        f"{len(result)} points, {len(result.triangles())} triangles, "
        f"{db.disk_accesses} disk accesses"
    )
    if args.render:
        print(render_points(result.points()))
    if args.obj:
        vertices, triangles = result.vertex_mesh()
        write_obj(args.obj, vertices=vertices, triangles=triangles)
        print(f"wrote {args.obj}")
    db.close()
    return 0


def _cmd_query(args) -> int:
    db, store = _open(args)
    roi = _roi_or_extent(args, store)
    db.begin_measured_query()
    result = store.uniform_query(roi, args.lod)
    return _finish(result, args, db)


def _cmd_viewdep(args) -> int:
    db, store = _open(args)
    plane = QueryPlane(
        Rect(*args.roi), args.emin, args.emax, tuple(args.direction)
    )
    db.begin_measured_query()
    result = store.multi_base_query(plane)
    print(f"multi-base plan: {result.n_range_queries} range queries")
    return _finish(result, args, db)


def _cmd_explain(args) -> int:
    from repro.core.explain import explain

    db, store = _open(args)
    roi = Rect(*args.roi)
    if args.lod is not None:
        explanation = explain(store, roi, lod=args.lod, execute=args.execute)
    elif args.emin is not None and args.emax is not None:
        plane = QueryPlane(roi, args.emin, args.emax)
        explanation = explain(store, plane, execute=args.execute)
    else:
        raise ReproError("explain needs --lod or both --emin and --emax")
    print(explanation.to_text())
    db.close()
    return 0


def _cmd_bench_serve(args) -> int:
    import random

    from repro.bench.runner import measure_throughput
    from repro.core.engine import SingleBaseRequest, UniformRequest
    from repro.obs.metrics import MetricsRegistry

    db = Database(
        args.database,
        pool_pages=args.pool_pages,
        io_latency=args.io_latency,
    )
    store = DirectMeshStore.open(db)
    space = store.rtree.data_space
    if space is None:
        raise ReproError("database is empty")
    extent = space.rect
    rng = random.Random(args.seed)
    side = args.roi_frac * min(extent.width, extent.height)

    def random_roi() -> Rect:
        x0 = extent.min_x + rng.random() * (extent.width - side)
        y0 = extent.min_y + rng.random() * (extent.height - side)
        return Rect(x0, y0, x0 + side, y0 + side)

    requests = []
    for i in range(args.requests):
        viewdep = args.mode == "viewdep" or (
            args.mode == "mixed" and i % 2 == 1
        )
        if viewdep:
            e_min = (0.1 + 0.3 * rng.random()) * store.max_lod
            e_max = e_min + (0.2 + 0.4 * rng.random()) * store.max_lod
            requests.append(
                SingleBaseRequest(QueryPlane(random_roi(), e_min, e_max))
            )
        else:
            lod = (0.2 + 0.6 * rng.random()) * store.max_lod
            requests.append(UniformRequest(random_roi(), lod))

    # Faults go live only now: the open/workload phases above are
    # setup, not serving — only the engine's retry/quarantine paths
    # should face injected errors or corruption.
    injector = None
    if args.fault_rate > 0.0 or args.corrupt_rate > 0.0:
        from repro.storage.faults import FaultInjector

        injector = FaultInjector(
            error_rate=args.fault_rate,
            corrupt_rate=args.corrupt_rate,
            seed=args.seed,
        )
        db.set_fault_injector(injector)

    clustered_path = store.clusters is not None and not args.no_clustered
    print(
        f"bench-serve: {args.requests} {args.mode} requests "
        f"x{args.repeat}, pool {args.pool_pages} pages, "
        f"io latency {args.io_latency}s, dedup {args.dedup}, "
        f"path {'clustered' if clustered_path else 'per-node'}"
    )
    if args.cache_mb > 0.0:
        print(
            f"  semantic cache: {args.cache_mb} MiB, "
            f"prefetch-e {args.prefetch_e}"
        )
    if (
        args.fault_rate > 0.0
        or args.corrupt_rate > 0.0
        or args.deadline_ms is not None
    ):
        deadline = (
            "none" if args.deadline_ms is None else f"{args.deadline_ms}ms"
        )
        print(
            f"  faults: rate {args.fault_rate}, corrupt "
            f"{args.corrupt_rate}, retries {args.retries}, "
            f"deadline {deadline}"
        )
    print(
        f"  {'workers':<10}{'wall s':<12}{'queries/s':<12}{'speedup':<10}"
        f"{'ok':<8}{'err':<8}{'degraded':<10}{'hit%':<8}"
    )
    deadline_s = (
        None if args.deadline_ms is None else args.deadline_ms / 1000.0
    )
    base_qps = None
    registry = None
    for workers in args.workers:
        registry = MetricsRegistry()
        # The pagers report crc failures into the sweep's registry.
        db.set_metrics_registry(registry)
        # A fresh cache per sweep: every worker count faces the same
        # cold-cache state, so rows stay comparable.
        cache = None
        if args.cache_mb > 0.0:
            from repro.core.cache import SemanticCache

            cache = SemanticCache(
                int(args.cache_mb * 1024 * 1024),
                prefetch_e=args.prefetch_e,
            )
        report = measure_throughput(
            store,
            requests,
            workers,
            dedup=args.dedup,
            registry=registry,
            retries=args.retries,
            deadline_s=deadline_s,
            cache=cache,
            vectorized=not args.no_vectorized,
            repeat=args.repeat,
            clustered=False if args.no_clustered else None,
        )
        if base_qps is None:
            base_qps = report.qps
        speedup = report.qps / base_qps if base_qps else 0.0
        print(
            f"  {workers:<10}{report.wall_s:<12.3f}"
            f"{report.qps:<12.1f}{speedup:<10.2f}"
            f"{report.n_ok:<8}{report.n_errors:<8}{report.n_degraded:<10}"
            f"{100.0 * report.cache_hit_rate:<8.1f}"
        )
    if injector is not None:
        print(
            f"  injected {injector.errors_injected} faults, "
            f"{injector.corruptions_injected} corruptions over "
            f"{injector.calls} reads"
        )
        if args.corrupt_rate > 0.0:
            print(
                f"  crc failures: {db.crc_failures} "
                f"(run `python -m repro fsck` to scrub and repair)"
            )
    if args.metrics and registry is not None:
        print()
        print(registry.report())
    db.close()
    return 0


def _cmd_bench_slo(args) -> int:
    import json

    from repro.bench.openloop import (
        OpenLoopConfig,
        measure_capacity,
        run_open_loop,
        suggest_budget,
        validate_slo_report,
    )
    from repro.core.engine import CostGovernor, QueryEngine
    from repro.obs.metrics import MetricsRegistry

    db = Database(
        args.database,
        pool_pages=args.pool_pages,
        io_latency=args.io_latency,
    )
    store = DirectMeshStore.open(db)

    def config_at(rate: float) -> OpenLoopConfig:
        return OpenLoopConfig(
            offered_rate=rate,
            n_requests=args.requests,
            mode=args.mode,
            seed=args.seed,
            roi_frac=args.roi_frac,
            hotspots=args.hotspots,
            sessions=args.sessions,
            tenants=args.tenants,
            slo_ms=args.slo_ms,
        )

    capacity = None
    if args.offered_rate is not None:
        offered = args.offered_rate
    else:
        capacity = measure_capacity(
            store, config_at(1.0), workers=args.workers
        )
        offered = args.rate_multiple * capacity
        print(
            f"closed-loop capacity: {capacity:.1f} qps -> offering "
            f"{offered:.1f} req/s ({args.rate_multiple:g}x)"
        )
    config = config_at(offered)

    governor = None
    if not args.no_admission:
        budget = args.budget_da
        if budget is None:
            budget = suggest_budget(store, config, args.workers)
            print(f"admission budget: {budget:.1f} estimated disk accesses")
        governor = CostGovernor(
            store.cost_model,
            budget,
            tenant_rate=args.tenant_rate,
        )

    cache = None
    if args.cache_mb > 0.0:
        from repro.core.cache import SemanticCache

        cache = SemanticCache(int(args.cache_mb * 1024 * 1024))

    registry = MetricsRegistry()
    db.set_metrics_registry(registry)
    with QueryEngine(
        store,
        workers=args.workers,
        registry=registry,
        governor=governor,
        cache=cache,
    ) as engine:
        result = run_open_loop(engine, config)
    print(result.to_text())

    report = result.to_json()
    if capacity is not None:
        report["capacity_qps"] = round(capacity, 1)
        report["rate_multiple"] = args.rate_multiple
    problems = validate_slo_report(report)
    if problems:
        raise InvariantError(
            "generated report fails its own schema", problems=problems
        )
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.metrics:
        print()
        print(registry.report())
    db.close()
    return 0


def _cmd_bench_session(args) -> int:
    import json

    from repro.bench.openloop import (
        SESSION_TRANSPORTS,
        OpenLoopConfig,
        run_delta_sessions,
        validate_session_report,
    )
    from repro.core.engine import QueryEngine
    from repro.obs.metrics import MetricsRegistry

    db = Database(
        args.database,
        pool_pages=args.pool_pages,
        io_latency=args.io_latency,
    )
    store = DirectMeshStore.open(db)
    config = OpenLoopConfig(
        offered_rate=1.0,  # Closed-loop per frame; the rate is unused.
        n_requests=args.frames,
        mode="flightpath",
        seed=args.seed,
        roi_frac=args.roi_frac,
        step_frac=args.step_frac,
        lod_breathe=args.lod_breathe,
        sessions=args.sessions,
        tenants=args.tenants,
    )

    def make_cache():
        if args.cache_mb <= 0.0:
            return None
        from repro.core.cache import SemanticCache

        return SemanticCache(int(args.cache_mb * 1024 * 1024))

    results = {}
    delta_registry = None
    for transport in SESSION_TRANSPORTS:
        registry = MetricsRegistry()
        db.set_metrics_registry(registry)
        with QueryEngine(
            store,
            workers=args.workers,
            registry=registry,
            cache=make_cache(),
        ) as engine:
            results[transport] = run_delta_sessions(
                engine, config, transport, verify=not args.no_verify
            )
        if transport == "delta":
            delta_registry = registry

    reports = []
    for transport in SESSION_TRANSPORTS:
        result = results[transport]
        print(result.to_text())
        report = result.to_json()
        problems = validate_session_report(report)
        if problems:
            raise InvariantError(
                "generated report fails its own schema", problems=problems
            )
        reports.append(report)
    delta, naive = results["delta"], results["naive"]
    reduction = (
        naive.bytes_wire / delta.bytes_wire if delta.bytes_wire else 0.0
    )
    print(
        f"bytes-on-wire reduction: {reduction:.1f}x "
        f"({naive.bytes_wire} B naive -> {delta.bytes_wire} B delta)"
    )

    if args.json:
        payload = {
            "runs": reports,
            "bytes_reduction": round(reduction, 2),
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.metrics and delta_registry is not None:
        print()
        print(delta_registry.report())
    db.close()
    return 0


def _cmd_fsck(args) -> int:
    import json

    from repro.obs.metrics import MetricsRegistry
    from repro.storage import (
        archive_pages,
        inject_corruption,
        repair_database,
        scrub_database,
    )
    from repro.storage.faults import CORRUPTION_KINDS

    path = Path(args.database)
    if not path.is_dir():
        raise ReproError(f"{path} is not a database directory")
    registry = MetricsRegistry()
    notes: list[str] = []
    # recover=False: an fsck must inspect the database as-is, not
    # replay (and delete) the WAL it may later want as a repair source.
    with Database(path, recover=False) as db:
        db.set_metrics_registry(registry)
        if args.archive:
            wal_path = archive_pages(db)
            total = sum(db.segment_pages(n) for n in db.segment_names())
            notes.append(f"archived {total} pages to {wal_path.name}")
        if args.inject > 0:
            kinds = (args.kind,) if args.kind else CORRUPTION_KINDS
            hits = inject_corruption(
                path,
                args.inject,
                seed=args.seed,
                kinds=kinds,
                page_size=db.page_size,
            )
            notes.append(
                f"injected {len(hits)} corruptions: "
                + ", ".join(f"{s}:{p} ({k})" for s, p, k in hits)
            )
        report = scrub_database(db, registry)
        if args.repair:
            repair_database(db, report)
            registry.counter("fsck.pages_repaired").inc(report.repaired_pages)
            registry.counter("fsck.pages_quarantined").inc(
                report.quarantined_pages
            )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for note in notes:
            print(note)
        print(report.to_text())
    return 0 if report.ok else 1


def _cmd_info(args) -> int:
    path = Path(args.database)
    if not path.is_dir():
        raise ReproError(f"{path} is not a database directory")
    with Database(path) as db:
        print(f"database: {path}")
        print(
            f"page format: v{db.page_format} "
            + ("(checksummed)" if db.checksums else "(no checksums)")
        )
        for name in db.segment_names():
            pages = db.segment_pages(name)
            print(f"  {name:<16} {pages:>6} pages  "
                  f"({pages * db.page_size / 1024:.0f} KiB)")
        try:
            store = DirectMeshStore.open(db)
            print(f"direct mesh: max LOD {store.max_lod:.3f}, "
                  f"{len(store.rtree)} indexed segments, "
                  f"R*-tree height {store.rtree.height}")
            if args.verify:
                from repro.core.verify_store import verify_store

                print(verify_store(store).to_text())
        except ReproError:
            print("no Direct Mesh store present")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
