"""Benchmark harness: workloads, measurement, figures, caching.

``benchmarks/`` (pytest-benchmark) drives these; they can also be used
directly, e.g.::

    from repro.bench import load_environment, Workload
    from repro.bench.figures import uniform_varying_roi

    env = load_environment("foothills", 20000)
    table = uniform_varying_roi(env, Workload(env.dataset),
                                [0.05, 0.10], "demo")
    print(table.to_text())
"""

from repro.bench.cache import ExperimentEnv, cache_root, load_environment
from repro.bench.reporting import SeriesTable
from repro.bench.runner import (
    UNIFORM_METHODS,
    VIEWDEP_METHODS,
    average_over,
    measure_uniform,
    measure_viewdep,
)
from repro.bench.workload import (
    ANGLE_SWEEP,
    DEFAULT_LOCATIONS,
    LOD_SWEEP,
    ROI_SWEEP_17M,
    ROI_SWEEP_2M,
    Workload,
)

__all__ = [
    "ANGLE_SWEEP",
    "DEFAULT_LOCATIONS",
    "ExperimentEnv",
    "LOD_SWEEP",
    "ROI_SWEEP_17M",
    "ROI_SWEEP_2M",
    "SeriesTable",
    "UNIFORM_METHODS",
    "VIEWDEP_METHODS",
    "Workload",
    "average_over",
    "cache_root",
    "load_environment",
    "measure_uniform",
    "measure_viewdep",
]
