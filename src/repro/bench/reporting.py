"""Result tables: the textual form of the paper's figures.

Each experiment produces a :class:`SeriesTable` — one row per x value,
one column per method — matching the paper's plots (x axis vs number
of disk accesses).  Tables print aligned text and write CSV into
``results/``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SeriesTable"]


@dataclass
class SeriesTable:
    """One experiment's output series.

    Attributes:
        experiment: identifier, e.g. ``"fig6a"``.
        title: human description.
        x_label: the swept parameter.
        columns: method names in display order.
        rows: ``(x_value, {method: value})`` pairs.
        meta: free-form provenance (dataset size, locations, ...).
    """

    experiment: str
    title: str
    x_label: str
    columns: list[str]
    rows: list[tuple[float, dict[str, float]]] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    def add_row(self, x: float, values: dict[str, float]) -> None:
        """Append one x-value's measurements."""
        self.rows.append((x, values))

    def column(self, name: str) -> list[float]:
        """One method's series, in row order."""
        return [values[name] for _, values in self.rows]

    def x_values(self) -> list[float]:
        """The swept x values, in row order."""
        return [x for x, _ in self.rows]

    # -- output -----------------------------------------------------------

    def to_text(self) -> str:
        """An aligned, human-readable table."""
        header = [self.x_label] + self.columns
        widths = [max(12, len(h) + 2) for h in header]
        lines = [
            f"{self.experiment}: {self.title}",
            "  " + "".join(h.ljust(w) for h, w in zip(header, widths)),
            "  " + "-" * (sum(widths)),
        ]
        for x, values in self.rows:
            cells = [_fmt(x)] + [_fmt(values.get(c)) for c in self.columns]
            lines.append(
                "  " + "".join(c.ljust(w) for c, w in zip(cells, widths))
            )
        if self.meta:
            meta = ", ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
            lines.append(f"  [{meta}]")
        return "\n".join(lines)

    def to_csv(self, directory: str | Path = "results") -> Path:
        """Write ``<experiment>.csv`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.experiment}.csv"
        with open(path, "w", newline="", encoding="ascii") as f:
            writer = csv.writer(f)
            writer.writerow([self.x_label] + self.columns)
            for x, values in self.rows:
                writer.writerow([x] + [values.get(c, "") for c in self.columns])
        return path

    # -- shape checks (used by benchmark assertions) ------------------------------

    def dominates(self, winner: str, loser: str, at_least: float = 1.0) -> bool:
        """True if ``winner``'s value is <= ``loser``'s / ``at_least``
        at every x (DA: lower is better)."""
        for _, values in self.rows:
            if winner not in values or loser not in values:
                return False
            if values[winner] > values[loser] / at_least:
                return False
        return True

    def is_monotonic(self, name: str, increasing: bool = True,
                     tolerance: float = 0.15) -> bool:
        """True if the series trends in one direction (small
        ``tolerance`` fraction of local backsliding allowed)."""
        series = self.column(name)
        if len(series) < 2:
            return True
        violations = 0
        for a, b in zip(series, series[1:]):
            if increasing and b < a * (1 - tolerance):
                violations += 1
            if not increasing and b > a * (1 + tolerance):
                violations += 1
        return violations == 0


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)
