"""Assemble ``results/*.csv`` into one markdown report.

After a benchmark run, every experiment leaves a CSV in ``results/``.
``python -m repro.bench.report [results_dir] [output.md]`` stitches
them into a single document — the machine-generated companion to the
hand-written EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

__all__ = ["build_report", "main"]

#: Display order and titles; unknown experiments are appended at the end.
_KNOWN = [
    ("fig6a", "Figure 6(a) — uniform mesh, varying ROI, 2M-analog"),
    ("fig6b", "Figure 6(b) — uniform mesh, varying LOD, 2M-analog"),
    ("fig6c", "Figure 6(c) — uniform mesh, varying ROI, 17M-analog"),
    ("fig6d", "Figure 6(d) — uniform mesh, varying LOD, 17M-analog"),
    ("fig8a", "Figure 8(a) — viewpoint-dependent, varying ROI, 2M-analog"),
    ("fig8b", "Figure 8(b) — viewpoint-dependent, varying e_min, 2M-analog"),
    ("fig8c", "Figure 8(c) — viewpoint-dependent, varying angle, 2M-analog"),
    ("fig8d", "Figure 8(d) — viewpoint-dependent, varying ROI, 17M-analog"),
    ("fig8e", "Figure 8(e) — viewpoint-dependent, varying e_min, 17M-analog"),
    ("fig8f", "Figure 8(f) — viewpoint-dependent, varying angle, 17M-analog"),
    ("tab_conn", "Section 4 statistics — connection points per node"),
    ("tab_storage_2m", "Storage per node — 2M-analog"),
    ("tab_storage_17m", "Storage per node — 17M-analog"),
    ("abl_multibase", "Ablation — multi-base strip count"),
    ("abl_middle_split", "Ablation — split position (formula 9)"),
    ("abl_planner", "Ablation — planner vs forced single-base"),
    ("abl_buffer", "Ablation — cold vs warm buffer"),
    ("abl_pool_size", "Ablation — buffer pool capacity"),
    ("abl_clustering", "Ablation — heap clustering order"),
    ("abl_compression", "Ablation — connection-list compression"),
    ("abl_access_pattern", "Ablation — physical read patterns"),
    ("abl_visibility", "Ablation — HDoV visibility machinery"),
    ("ext_streaming", "Extension — delta streaming"),
    ("ext_quality", "Extension — quality / disk-access frontier"),
    ("ext_radial", "Extension — radial viewer model"),
]


def _csv_to_markdown(path: Path) -> str:
    with open(path, newline="", encoding="ascii") as f:
        rows = list(csv.reader(f))
    if not rows:
        return "*(empty)*"
    header, *data = rows
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "---|" * len(header),
    ]
    for row in data:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def build_report(results_dir: str | Path = "results") -> str:
    """The assembled markdown text (empty-results tolerant)."""
    results_dir = Path(results_dir)
    available = {p.stem: p for p in sorted(results_dir.glob("*.csv"))}
    sections: list[str] = [
        "# Benchmark results",
        "",
        "Generated from the CSV files a `pytest benchmarks/"
        " --benchmark-only` run writes into `results/`.  Values are"
        " disk accesses unless a column says otherwise; see"
        " EXPERIMENTS.md for the paper-vs-measured discussion.",
    ]
    ordered = [key for key, _ in _KNOWN if key in available]
    extras = [key for key in available if key not in dict(_KNOWN)]
    titles = dict(_KNOWN)
    for key in ordered + sorted(extras):
        sections.append("")
        sections.append(f"## {titles.get(key, key)}")
        sections.append("")
        sections.append(_csv_to_markdown(available[key]))
    if not available:
        sections.append("")
        sections.append(
            "*(no CSVs found — run the benchmarks first)*"
        )
    return "\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry: ``python -m repro.bench.report [dir] [out.md]``."""
    args = sys.argv[1:] if argv is None else argv
    results_dir = args[0] if args else "results"
    report = build_report(results_dir)
    if len(args) > 1:
        Path(args[1]).write_text(report, encoding="utf-8")
        print(f"wrote {args[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
