"""Measurement driver: run each method cold and count disk accesses.

The protocol per measurement mirrors the paper: flush the buffer,
reset the counters, run the query, read the physical-read count from
the statistics report.  Each (x value) is averaged over the workload's
random locations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.bench.cache import ExperimentEnv
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.direct_mesh import DirectMeshStore
    from repro.core.engine import EngineRequest

__all__ = [
    "UNIFORM_METHODS",
    "VIEWDEP_METHODS",
    "ThroughputReport",
    "measure_uniform",
    "measure_viewdep",
    "measure_throughput",
    "average_over",
]

#: Method display order for viewpoint-independent experiments
#: (paper Figure 6; SB is the only DM variant applicable).
UNIFORM_METHODS = ["DM", "PM", "HDoV"]

#: Method display order for viewpoint-dependent experiments (Figure 8).
VIEWDEP_METHODS = ["DM-SB", "DM-MB", "PM", "HDoV"]


def _cold(
    env: ExperimentEnv,
    run: Callable[[], object],
    registry: MetricsRegistry | None = None,
) -> int:
    """Run ``run`` against a flushed buffer; return disk accesses.

    With a ``registry``, the cold wall time also lands in the
    ``bench.cold_query_s`` histogram.
    """
    env.database.begin_measured_query()
    if registry is None:
        run()
    else:
        with registry.timer("bench.cold_query_s"):
            run()
    return env.database.disk_accesses


def measure_uniform(
    env: ExperimentEnv, roi: Rect, lod: float
) -> dict[str, float]:
    """Disk accesses of one viewpoint-independent query, per method."""
    return {
        "DM": _cold(env, lambda: env.dm.uniform_query(roi, lod)),
        "PM": _cold(env, lambda: env.pm_store.uniform_query(roi, lod)),
        "HDoV": _cold(env, lambda: env.hdov.uniform_query(roi, lod)),
    }


def measure_viewdep(
    env: ExperimentEnv, plane: QueryPlane
) -> dict[str, float]:
    """Disk accesses of one viewpoint-dependent query, per method."""
    return {
        "DM-SB": _cold(env, lambda: env.dm.single_base_query(plane)),
        "DM-MB": _cold(env, lambda: env.dm.multi_base_query(plane)),
        "PM": _cold(env, lambda: env.pm_store.viewdep_query(plane)),
        "HDoV": _cold(env, lambda: env.hdov.viewdep_query(plane)),
    }


@dataclass(frozen=True)
class ThroughputReport:
    """One serving measurement: a request batch at a worker count.

    ``n_ok`` / ``n_errors`` / ``n_degraded`` summarise per-request
    outcomes under fault injection and deadlines; on a fair-weather
    run ``n_ok == n_requests``.  ``n_cache_hits`` /
    ``n_cache_misses`` count semantic-cache activity during the
    measurement (both zero when no cache was attached).
    """

    workers: int
    n_requests: int
    wall_s: float
    registry: MetricsRegistry
    n_ok: int = 0
    n_errors: int = 0
    n_degraded: int = 0
    n_cache_hits: int = 0
    n_cache_misses: int = 0

    @property
    def qps(self) -> float:
        """Completed requests per second of wall time."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_requests / self.wall_s

    @property
    def success_rate(self) -> float:
        """Fraction of requests that produced a result (1.0 if empty)."""
        if self.n_requests == 0:
            return 1.0
        return self.n_ok / self.n_requests

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits per lookup during the run (0.0 without a cache)."""
        lookups = self.n_cache_hits + self.n_cache_misses
        if lookups == 0:
            return 0.0
        return self.n_cache_hits / lookups


def measure_throughput(
    store: "DirectMeshStore",
    requests: Sequence["EngineRequest"],
    workers: int,
    dedup: str = "exact",
    registry: MetricsRegistry | None = None,
    flush_first: bool = True,
    retries: int = 2,
    deadline_s: float | None = None,
    cache=None,
    vectorized: bool = True,
    repeat: int = 1,
    clustered: bool | None = None,
) -> ThroughputReport:
    """Serve ``requests`` through a :class:`QueryEngine` and time it.

    ``flush_first`` starts from a cold buffer (the paper's protocol)
    so runs at different worker counts face identical cache state.
    ``retries`` and ``deadline_s`` are handed to the engine unchanged
    (see :class:`~repro.core.engine.QueryEngine`), as are ``cache``
    (a :class:`~repro.core.cache.SemanticCache`), ``vectorized``, and
    ``clustered`` (``None`` auto-enables the cluster fast path when
    the store has a cluster section; ``False`` forces the per-node
    oracle path — the A/B lever of the cluster benchmark).
    ``repeat`` replays the batch that many times inside the timing
    window — the repeated/overlapping workload a warm semantic cache
    is built for; the report counts every replayed request.
    """
    from repro.core.engine import QueryEngine

    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if registry is None:
        registry = MetricsRegistry()
    if flush_first:
        store.database.flush()
    hits_before = registry.counter("cache.hits").value
    misses_before = registry.counter("cache.misses").value
    outcomes = []
    with QueryEngine(
        store,
        workers=workers,
        dedup=dedup,
        registry=registry,
        retries=retries,
        deadline_s=deadline_s,
        cache=cache,
        vectorized=vectorized,
        clustered=clustered,
    ) as engine:
        started = time.perf_counter()
        for _ in range(repeat):
            outcomes.extend(engine.run_batch(requests))
        wall_s = time.perf_counter() - started
    registry.histogram("bench.batch_s").observe(wall_s)
    n_ok = sum(1 for o in outcomes if o.ok)
    n_degraded = sum(1 for o in outcomes if o.degraded)
    return ThroughputReport(
        workers,
        len(outcomes),
        wall_s,
        registry,
        n_ok=n_ok,
        n_errors=len(outcomes) - n_ok,
        n_degraded=n_degraded,
        n_cache_hits=registry.counter("cache.hits").value - hits_before,
        n_cache_misses=(
            registry.counter("cache.misses").value - misses_before
        ),
    )


def average_over(
    centers: list[tuple[float, float]],
    measure: Callable[[tuple[float, float]], dict[str, float]],
) -> dict[str, float]:
    """Run ``measure`` at every centre and average each method."""
    totals: dict[str, float] = {}
    for center in centers:
        for method, value in measure(center).items():
            totals[method] = totals.get(method, 0.0) + value
    return {m: v / len(centers) for m, v in totals.items()}
