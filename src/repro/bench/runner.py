"""Measurement driver: run each method cold and count disk accesses.

The protocol per measurement mirrors the paper: flush the buffer,
reset the counters, run the query, read the physical-read count from
the statistics report.  Each (x value) is averaged over the workload's
random locations.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.cache import ExperimentEnv
from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect

__all__ = [
    "UNIFORM_METHODS",
    "VIEWDEP_METHODS",
    "measure_uniform",
    "measure_viewdep",
    "average_over",
]

#: Method display order for viewpoint-independent experiments
#: (paper Figure 6; SB is the only DM variant applicable).
UNIFORM_METHODS = ["DM", "PM", "HDoV"]

#: Method display order for viewpoint-dependent experiments (Figure 8).
VIEWDEP_METHODS = ["DM-SB", "DM-MB", "PM", "HDoV"]


def _cold(env: ExperimentEnv, run: Callable[[], object]) -> int:
    """Run ``run`` against a flushed buffer; return disk accesses."""
    env.database.begin_measured_query()
    run()
    return env.database.disk_accesses


def measure_uniform(
    env: ExperimentEnv, roi: Rect, lod: float
) -> dict[str, float]:
    """Disk accesses of one viewpoint-independent query, per method."""
    return {
        "DM": _cold(env, lambda: env.dm.uniform_query(roi, lod)),
        "PM": _cold(env, lambda: env.pm_store.uniform_query(roi, lod)),
        "HDoV": _cold(env, lambda: env.hdov.uniform_query(roi, lod)),
    }


def measure_viewdep(
    env: ExperimentEnv, plane: QueryPlane
) -> dict[str, float]:
    """Disk accesses of one viewpoint-dependent query, per method."""
    return {
        "DM-SB": _cold(env, lambda: env.dm.single_base_query(plane)),
        "DM-MB": _cold(env, lambda: env.dm.multi_base_query(plane)),
        "PM": _cold(env, lambda: env.pm_store.viewdep_query(plane)),
        "HDoV": _cold(env, lambda: env.hdov.viewdep_query(plane)),
    }


def average_over(
    centers: list[tuple[float, float]],
    measure: Callable[[tuple[float, float]], dict[str, float]],
) -> dict[str, float]:
    """Run ``measure`` at every centre and average each method."""
    totals: dict[str, float] = {}
    for center in centers:
        for method, value in measure(center).items():
            totals[method] = totals.get(method, 0.0) + value
    return {m: v / len(centers) for m, v in totals.items()}
