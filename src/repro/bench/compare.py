"""Regression gate over open-loop SLO bench reports.

The nightly bench workflow runs the open-loop matrix into
``BENCH_6.json`` and compares it against the baseline committed in the
repository: a p99 latency regression beyond the threshold on any
*admission-controlled* run fails the build.  The no-admission arms are
deliberately exempt — they exist to demonstrate latency collapse, so
their percentiles are as large as the queue got and carry no signal.

Runs are matched across files by :func:`run_key` (workload mode +
admission flag + offered-rate multiple), so a matrix can grow new
cells without breaking comparison of the existing ones; a *missing*
baseline cell is reported but never fails the gate (the first nightly
after adding a cell has nothing to compare against).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.openloop import validate_slo_report
from repro.errors import QueryError

__all__ = [
    "RunComparison",
    "ComparisonResult",
    "extract_slo_runs",
    "run_key",
    "compare_reports",
    "compare_files",
]

#: Fractional p99 growth tolerated before the gate fails (0.25 = 25%).
DEFAULT_MAX_P99_REGRESSION = 0.25

#: Absolute p99 floor (ms) below which regressions are ignored: at
#: sub-millisecond latencies the ratio is all scheduler noise.
P99_NOISE_FLOOR_MS = 1.0


def extract_slo_runs(payload: object) -> list[dict]:
    """The validated open-loop runs inside one ``BENCH_6.json`` payload.

    Accepts either the merged BENCH layout (``{"slo_openloop":
    {"runs": [...]}}``) or a bare ``{"runs": [...]}`` / ``[...]``
    written by ``bench-slo --json``-style tooling.
    """
    if isinstance(payload, dict) and "slo_openloop" in payload:
        payload = payload["slo_openloop"]
    if isinstance(payload, dict) and "runs" in payload:
        payload = payload["runs"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise QueryError(
            "no open-loop runs found", payload_type=type(payload).__name__
        )
    runs: list[dict] = []
    for index, report in enumerate(payload):
        problems = validate_slo_report(report)
        if problems:
            raise QueryError(
                f"run {index} fails the report schema",
                problems="; ".join(problems),
            )
        runs.append(report)
    return runs


def run_key(report: dict) -> str:
    """A stable identity for one matrix cell across bench files."""
    multiple = report.get("rate_multiple")
    rate = f"{multiple:g}x" if multiple is not None else "fixed-rate"
    admission = "admission" if report["admission"] else "no-admission"
    return f"{report['mode']}/{rate}/{admission}"


@dataclass(frozen=True)
class RunComparison:
    """One matrix cell's baseline-vs-candidate verdict."""

    key: str
    gated: bool
    baseline_p99_ms: float | None
    candidate_p99_ms: float
    regressed: bool

    @property
    def ratio(self) -> float | None:
        """Candidate p99 over baseline p99 (None without a baseline)."""
        if self.baseline_p99_ms is None or self.baseline_p99_ms <= 0:
            return None
        return self.candidate_p99_ms / self.baseline_p99_ms


@dataclass
class ComparisonResult:
    """The gate's full verdict over a candidate bench file."""

    threshold: float
    rows: list[RunComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no gated run regressed past the threshold."""
        return not any(row.regressed for row in self.rows)

    def to_text(self) -> str:
        lines = [
            f"bench gate: p99 regression threshold "
            f"{100 * self.threshold:.0f}% (admission runs only)"
        ]
        for row in self.rows:
            if row.baseline_p99_ms is None:
                verdict = "NEW (no baseline)"
                base = "-"
            else:
                change = 100.0 * (row.ratio - 1.0)
                verdict = "FAIL" if row.regressed else "ok"
                if not row.gated:
                    verdict = "exempt"
                base = f"{row.baseline_p99_ms:.2f}"
                verdict = f"{verdict} ({change:+.1f}%)"
            lines.append(
                f"  {row.key:<32} p99 {base:>9} -> "
                f"{row.candidate_p99_ms:>9.2f} ms  {verdict}"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def compare_reports(
    baseline_runs: list[dict],
    candidate_runs: list[dict],
    max_p99_regression: float = DEFAULT_MAX_P99_REGRESSION,
) -> ComparisonResult:
    """Gate candidate runs against their baseline counterparts."""
    if max_p99_regression <= 0:
        raise QueryError(
            f"max_p99_regression must be > 0, got {max_p99_regression}"
        )
    baseline_by_key = {run_key(run): run for run in baseline_runs}
    result = ComparisonResult(threshold=max_p99_regression)
    for run in candidate_runs:
        key = run_key(run)
        base = baseline_by_key.get(key)
        candidate_p99 = float(run["latency_ms"]["p99"])
        gated = bool(run["admission"])
        if base is None:
            result.rows.append(
                RunComparison(key, gated, None, candidate_p99, False)
            )
            continue
        baseline_p99 = float(base["latency_ms"]["p99"])
        regressed = (
            gated
            and candidate_p99 > P99_NOISE_FLOOR_MS
            and baseline_p99 > 0
            and candidate_p99 > baseline_p99 * (1.0 + max_p99_regression)
        )
        result.rows.append(
            RunComparison(key, gated, baseline_p99, candidate_p99, regressed)
        )
    return result


def compare_files(
    baseline_path: str | Path,
    candidate_path: str | Path,
    max_p99_regression: float = DEFAULT_MAX_P99_REGRESSION,
) -> ComparisonResult:
    """Load two bench JSON files and gate candidate against baseline."""
    baseline = json.loads(Path(baseline_path).read_text())
    candidate = json.loads(Path(candidate_path).read_text())
    return compare_reports(
        extract_slo_runs(baseline),
        extract_slo_runs(candidate),
        max_p99_regression,
    )
