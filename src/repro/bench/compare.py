"""Regression gate over open-loop SLO and delta-session bench reports.

The nightly bench workflow runs the open-loop matrix into
``BENCH_6.json``, the delta-session matrix into ``BENCH_7.json``, and
the cluster fast-path A/B into ``BENCH_8.json``, then compares each
against the baseline committed in the repository: a p99 latency
regression beyond the threshold on any *gated* run fails the build.
Gated means admission-controlled for the SLO matrix (the no-admission
arms exist to demonstrate latency collapse, so their percentiles
carry no signal), ``delta`` transport for the session matrix, and the
``clustered`` path for the cluster matrix (``naive`` re-query and the
``per-node`` oracle are the baselines being beaten, not numbers we
defend).

Runs are matched across files by :func:`run_key` /
:func:`session_run_key`, so a matrix can grow new cells without
breaking comparison of the existing ones; a *missing* baseline cell
is reported but never fails the gate (the first nightly after adding
a cell has nothing to compare against).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.openloop import validate_session_report, validate_slo_report
from repro.errors import QueryError

__all__ = [
    "CLUSTER_PATHS",
    "CLUSTER_REPORT_SCHEMA",
    "CLUSTER_WORKLOADS",
    "RunComparison",
    "ComparisonResult",
    "extract_slo_runs",
    "extract_session_runs",
    "extract_cluster_runs",
    "run_key",
    "session_run_key",
    "cluster_run_key",
    "validate_cluster_report",
    "compare_reports",
    "compare_files",
]

#: Fractional p99 growth tolerated before the gate fails (0.25 = 25%).
DEFAULT_MAX_P99_REGRESSION = 0.25

#: Absolute p99 floor (ms) below which regressions are ignored: at
#: sub-millisecond latencies the ratio is all scheduler noise.
P99_NOISE_FLOOR_MS = 1.0


def extract_slo_runs(payload: object) -> list[dict]:
    """The validated open-loop runs inside one ``BENCH_6.json`` payload.

    Accepts either the merged BENCH layout (``{"slo_openloop":
    {"runs": [...]}}``) or a bare ``{"runs": [...]}`` / ``[...]``
    written by ``bench-slo --json``-style tooling.
    """
    if isinstance(payload, dict) and "slo_openloop" in payload:
        payload = payload["slo_openloop"]
    if isinstance(payload, dict) and "runs" in payload:
        payload = payload["runs"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise QueryError(
            "no open-loop runs found", payload_type=type(payload).__name__
        )
    runs: list[dict] = []
    for index, report in enumerate(payload):
        problems = validate_slo_report(report)
        if problems:
            raise QueryError(
                f"run {index} fails the report schema",
                problems="; ".join(problems),
            )
        runs.append(report)
    return runs


def run_key(report: dict) -> str:
    """A stable identity for one matrix cell across bench files."""
    multiple = report.get("rate_multiple")
    rate = f"{multiple:g}x" if multiple is not None else "fixed-rate"
    admission = "admission" if report["admission"] else "no-admission"
    return f"{report['mode']}/{rate}/{admission}"


def extract_session_runs(payload: object) -> list[dict]:
    """The validated session runs inside one ``BENCH_7.json`` payload.

    Accepts either the merged BENCH layout (``{"session_delta":
    {"runs": [...]}}``) or a bare ``{"runs": [...]}`` / ``[...]``
    written by ``bench-session --json``-style tooling.
    """
    if isinstance(payload, dict) and "session_delta" in payload:
        payload = payload["session_delta"]
    if isinstance(payload, dict) and "runs" in payload:
        payload = payload["runs"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise QueryError(
            "no session runs found", payload_type=type(payload).__name__
        )
    runs: list[dict] = []
    for index, report in enumerate(payload):
        problems = validate_session_report(report)
        if problems:
            raise QueryError(
                f"session run {index} fails the report schema",
                problems="; ".join(problems),
            )
        runs.append(report)
    return runs


def session_run_key(report: dict) -> str:
    """A stable identity for one session matrix cell across files."""
    return (
        f"session/{report['mode']}/step{report['step_frac']:g}/"
        f"{report['transport']}"
    )


#: Schema tag every cluster fast-path report must carry.
CLUSTER_REPORT_SCHEMA = "repro.cluster_fastpath/1"

#: Workloads the cluster A/B serves.
CLUSTER_WORKLOADS = ("uniform", "viewdep")

#: The two serving paths measured against each other.
CLUSTER_PATHS = ("clustered", "per-node")

_REQUIRED_CLUSTER_NUMBERS = ("qps", "requests", "wall_s", "workers")

_REQUIRED_CLUSTER_LATENCIES = ("p50", "p95", "p99")


def validate_cluster_report(report: object) -> list[str]:
    """Schema-check one cluster A/B run; returns problems ([] = valid).

    Same dependency-free style as
    :func:`~repro.bench.openloop.validate_slo_report`: key presence,
    numeric types, and the version/workload/path tags.
    """
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    if report.get("schema") != CLUSTER_REPORT_SCHEMA:
        problems.append(
            f"schema must be {CLUSTER_REPORT_SCHEMA!r}, got "
            f"{report.get('schema')!r}"
        )
    if report.get("workload") not in CLUSTER_WORKLOADS:
        problems.append(
            f"workload must be one of {CLUSTER_WORKLOADS}, got "
            f"{report.get('workload')!r}"
        )
    if report.get("path") not in CLUSTER_PATHS:
        problems.append(
            f"path must be one of {CLUSTER_PATHS}, got "
            f"{report.get('path')!r}"
        )
    for key in _REQUIRED_CLUSTER_NUMBERS:
        value = report.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{key} must be a number, got {value!r}")
    latency = report.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append("latency_ms must be an object")
    else:
        for key in _REQUIRED_CLUSTER_LATENCIES:
            value = latency.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"latency_ms.{key} must be a number")
    return problems


def extract_cluster_runs(payload: object) -> list[dict]:
    """The validated cluster runs inside one ``BENCH_8.json`` payload.

    Accepts either the merged BENCH layout (``{"cluster_fastpath":
    {"runs": [...]}}``) or a bare ``{"runs": [...]}`` / ``[...]``.
    """
    if isinstance(payload, dict) and "cluster_fastpath" in payload:
        payload = payload["cluster_fastpath"]
    if isinstance(payload, dict) and "runs" in payload:
        payload = payload["runs"]
    if isinstance(payload, dict):
        payload = [payload]
    if not isinstance(payload, list):
        raise QueryError(
            "no cluster runs found", payload_type=type(payload).__name__
        )
    runs: list[dict] = []
    for index, report in enumerate(payload):
        problems = validate_cluster_report(report)
        if problems:
            raise QueryError(
                f"cluster run {index} fails the report schema",
                problems="; ".join(problems),
            )
        runs.append(report)
    return runs


def cluster_run_key(report: dict) -> str:
    """A stable identity for one cluster A/B cell across files."""
    return f"cluster/{report['workload']}/{report['path']}"


@dataclass(frozen=True)
class RunComparison:
    """One matrix cell's baseline-vs-candidate verdict."""

    key: str
    gated: bool
    baseline_p99_ms: float | None
    candidate_p99_ms: float
    regressed: bool

    @property
    def ratio(self) -> float | None:
        """Candidate p99 over baseline p99 (None without a baseline)."""
        if self.baseline_p99_ms is None or self.baseline_p99_ms <= 0:
            return None
        return self.candidate_p99_ms / self.baseline_p99_ms


@dataclass
class ComparisonResult:
    """The gate's full verdict over a candidate bench file."""

    threshold: float
    rows: list[RunComparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no gated run regressed past the threshold."""
        return not any(row.regressed for row in self.rows)

    def to_text(self) -> str:
        lines = [
            f"bench gate: p99 regression threshold "
            f"{100 * self.threshold:.0f}% (gated runs only: admission "
            f"arms, delta transport, clustered path)"
        ]
        for row in self.rows:
            if row.baseline_p99_ms is None:
                verdict = "NEW (no baseline)"
                base = "-"
            else:
                change = 100.0 * (row.ratio - 1.0)
                verdict = "FAIL" if row.regressed else "ok"
                if not row.gated:
                    verdict = "exempt"
                base = f"{row.baseline_p99_ms:.2f}"
                verdict = f"{verdict} ({change:+.1f}%)"
            lines.append(
                f"  {row.key:<32} p99 {base:>9} -> "
                f"{row.candidate_p99_ms:>9.2f} ms  {verdict}"
            )
        lines.append("PASS" if self.ok else "FAIL")
        return "\n".join(lines)


def _compare_rows(
    baseline_rows: list[tuple[str, bool, dict]],
    candidate_rows: list[tuple[str, bool, dict]],
    max_p99_regression: float,
) -> ComparisonResult:
    """Gate ``(key, gated, run)`` rows against baseline counterparts."""
    if max_p99_regression <= 0:
        raise QueryError(
            f"max_p99_regression must be > 0, got {max_p99_regression}"
        )
    baseline_by_key = {key: run for key, _, run in baseline_rows}
    result = ComparisonResult(threshold=max_p99_regression)
    for key, gated, run in candidate_rows:
        base = baseline_by_key.get(key)
        candidate_p99 = float(run["latency_ms"]["p99"])
        if base is None:
            result.rows.append(
                RunComparison(key, gated, None, candidate_p99, False)
            )
            continue
        baseline_p99 = float(base["latency_ms"]["p99"])
        regressed = (
            gated
            and candidate_p99 > P99_NOISE_FLOOR_MS
            and baseline_p99 > 0
            and candidate_p99 > baseline_p99 * (1.0 + max_p99_regression)
        )
        result.rows.append(
            RunComparison(key, gated, baseline_p99, candidate_p99, regressed)
        )
    return result


def compare_reports(
    baseline_runs: list[dict],
    candidate_runs: list[dict],
    max_p99_regression: float = DEFAULT_MAX_P99_REGRESSION,
) -> ComparisonResult:
    """Gate candidate open-loop runs against baseline counterparts."""
    return _compare_rows(
        [(run_key(run), bool(run["admission"]), run)
         for run in baseline_runs],
        [(run_key(run), bool(run["admission"]), run)
         for run in candidate_runs],
        max_p99_regression,
    )


def _gather_rows(payload: object) -> list[tuple[str, bool, dict]]:
    """Every gateable run in one bench JSON payload, with its key.

    A merged file may carry an ``slo_openloop`` section, a
    ``session_delta`` section, a ``cluster_fastpath`` section, or any
    mix; the legacy bare-runs layout is treated as open-loop.  Raises
    when no section yields runs, so a mangled file cannot silently
    pass the gate.
    """
    rows: list[tuple[str, bool, dict]] = []
    sectioned = isinstance(payload, dict) and (
        "slo_openloop" in payload
        or "session_delta" in payload
        or "cluster_fastpath" in payload
    )
    if not sectioned:
        return [
            (run_key(run), bool(run["admission"]), run)
            for run in extract_slo_runs(payload)
        ]
    if isinstance(payload, dict) and "slo_openloop" in payload:
        rows.extend(
            (run_key(run), bool(run["admission"]), run)
            for run in extract_slo_runs(payload)
        )
    if isinstance(payload, dict) and "session_delta" in payload:
        rows.extend(
            (session_run_key(run), run["transport"] == "delta", run)
            for run in extract_session_runs(payload)
        )
    if isinstance(payload, dict) and "cluster_fastpath" in payload:
        rows.extend(
            (cluster_run_key(run), run["path"] == "clustered", run)
            for run in extract_cluster_runs(payload)
        )
    return rows


def compare_files(
    baseline_path: str | Path,
    candidate_path: str | Path,
    max_p99_regression: float = DEFAULT_MAX_P99_REGRESSION,
) -> ComparisonResult:
    """Load two bench JSON files and gate candidate against baseline.

    Gates whichever sections the candidate carries — open-loop runs
    (``BENCH_6.json``), delta-session runs (``BENCH_7.json``), cluster
    fast-path runs (``BENCH_8.json``), or any mix in one merged file.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    candidate = json.loads(Path(candidate_path).read_text())
    return _compare_rows(
        _gather_rows(baseline),
        _gather_rows(candidate),
        max_p99_regression,
    )
