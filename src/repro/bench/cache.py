"""Build-once caching of datasets, databases, and stores.

PM construction and store building for the benchmark datasets take
tens of seconds in pure Python; the harness builds each configuration
once and caches it under ``.data/`` (override with ``REPRO_CACHE_DIR``)
keyed by dataset name, point count, and a schema version that must be
bumped whenever on-disk formats change.
"""

from __future__ import annotations

import os
import pickle
import shutil
from dataclasses import dataclass
from pathlib import Path

from repro.baselines.pm_db import PMStore
from repro.core.direct_mesh import DirectMeshStore
from repro.errors import DatasetError
from repro.index.hdov import HDoVTree
from repro.storage.database import Database
from repro.terrain.datasets import TerrainDataset, dataset_by_name

__all__ = ["ExperimentEnv", "load_environment", "cache_root"]

#: Bump when any on-disk format (records, index pages, pickles) changes.
SCHEMA_VERSION = 8


@dataclass
class ExperimentEnv:
    """Everything one experiment needs, fully built.

    Attributes:
        dataset: the in-memory terrain dataset (for reference queries
            and workload parameters).
        database: the shared database holding all stores.
        dm: the Direct Mesh store.
        pm_store: the PM/LOD-quadtree baseline store.
        hdov: the HDoV-tree baseline.
    """

    dataset: TerrainDataset
    database: Database
    dm: DirectMeshStore
    pm_store: PMStore
    hdov: HDoVTree

    def close(self) -> None:
        """Close the database."""
        self.database.close()


def cache_root() -> Path:
    """The cache directory (created on demand)."""
    root = Path(os.environ.get("REPRO_CACHE_DIR", ".data"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def _hdov_grid_for(n_points: int) -> int:
    """Tile grid sized so full-resolution tiles hold ~1250+ points.

    The paper's HDoV setup partitions a multi-million-point terrain
    into a grid of renderable *objects*; object granularity relative
    to query result size is what drives HDoV's whole-object retrieval
    cost, so the scaled-down datasets keep tiles comparable to a
    typical query result rather than keeping the tile *count*.
    """
    grid = 2
    while grid * grid * 1250 < n_points and grid < 64:
        grid *= 2
    return grid


def load_environment(
    name: str,
    n_points: int,
    pool_pages: int = 256,
    rebuild: bool = False,
) -> ExperimentEnv:
    """Load (building and caching if needed) a full experiment setup.

    Args:
        name: dataset name (``"foothills"`` or ``"crater"``).
        n_points: terrain sample count.
        pool_pages: buffer pool size for the returned database.
        rebuild: force a rebuild even if the cache exists.
    """
    key = f"{name}-{n_points}-v{SCHEMA_VERSION}"
    root = cache_root() / key
    pickle_path = root / "dataset.pickle"
    db_path = root / "db"
    stamp = root / "COMPLETE"

    if rebuild and root.exists():
        shutil.rmtree(root)

    if not stamp.exists():
        if root.exists():
            shutil.rmtree(root)
        root.mkdir(parents=True)
        dataset = dataset_by_name(name, n_points)
        with open(pickle_path, "wb") as f:
            pickle.dump(dataset, f, protocol=pickle.HIGHEST_PROTOCOL)
        database = Database(db_path, pool_pages=pool_pages)
        with database.atomic():
            DirectMeshStore.build(dataset.pm, database, dataset.connections)
            PMStore.build(dataset.pm, database)
            HDoVTree.build(
                dataset.pm,
                dataset.field,
                database,
                connections=dataset.connections,
                grid=_hdov_grid_for(n_points),
            )
        database.close()
        stamp.touch()

    try:
        with open(pickle_path, "rb") as f:
            dataset = pickle.load(f)
    except (OSError, pickle.UnpicklingError) as exc:
        raise DatasetError(
            f"corrupt cache at {root}; delete it and retry"
        ) from exc
    database = Database(db_path, pool_pages=pool_pages)
    return ExperimentEnv(
        dataset=dataset,
        database=database,
        dm=DirectMeshStore.open(database),
        pm_store=PMStore.open(database),
        hdov=HDoVTree.open(database),
    )
