"""Open-loop SLO load harness for the concurrent serving path.

Every earlier bench in this repo is *closed-loop*: a worker issues its
next query only when the previous one returns, so the offered rate
automatically sags to whatever the engine can absorb and queueing
collapse is structurally invisible.  A serving tier for "millions of
users" faces the opposite contract — arrivals do not care how busy the
server is.  This module generates that load:

* **Poisson arrivals** at a configured offered rate (exponential
  inter-arrival gaps, seeded), dispatched on schedule regardless of
  completions via :meth:`~repro.core.engine.QueryEngine.submit`;
* **zipfian ROI popularity** — a fixed pool of hotspot cubes sampled
  with rank``^-s`` weights, the skew real map traffic shows (everyone
  looks at the same mountain);
* **flight-path sessions** — correlated streams whose consecutive
  query cubes overlap, the progressive-transmission workload of
  ROADMAP item 2 in open-loop form.

The result is scored the way an SLO is written: latency is measured
from the *scheduled arrival* (so queue wait counts), reported at
p50/p95/p99/p999, and **goodput-under-SLO** counts only full-fidelity
successes inside the latency budget.  Degraded and shed responses are
tallied separately — with a :class:`~repro.core.engine.CostGovernor`
attached they are the mechanism that keeps the percentiles bounded;
without one the same offered rate shows textbook latency collapse.
Reports serialize to a schema-versioned JSON payload
(:data:`SLO_REPORT_SCHEMA`) consumed by ``BENCH_6.json`` and the
nightly ``scripts/bench_compare.py`` regression gate.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import QueryError
from repro.geometry.primitives import Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from concurrent.futures import Future

    from repro.core.direct_mesh import DirectMeshStore
    from repro.core.engine import EngineRequest, QueryEngine, QueryOutcome
    from repro.core.streaming import EngineSession
    from repro.core.wire import ClientMesh

__all__ = [
    "SLO_REPORT_SCHEMA",
    "SESSION_REPORT_SCHEMA",
    "SESSION_TRANSPORTS",
    "OpenLoopConfig",
    "OpenLoopResult",
    "DeltaSessionResult",
    "poisson_arrivals",
    "zipf_workload",
    "flight_path_workload",
    "build_workload",
    "run_open_loop",
    "run_delta_sessions",
    "measure_capacity",
    "suggest_budget",
    "validate_slo_report",
    "validate_session_report",
]

#: Version tag carried by every serialized report; bump on any
#: breaking change to the JSON layout so the regression gate can
#: refuse to compare incompatible shapes instead of mis-reading them.
SLO_REPORT_SCHEMA = "repro.bench.slo/v1"

#: Version tag for delta-session bench reports (``BENCH_7.json``).
SESSION_REPORT_SCHEMA = "repro.bench.session/v1"

#: How a session run ships results: ``delta`` frames over an
#: :class:`~repro.core.streaming.EngineSession`, or ``naive``
#: stateless re-query shipping the full result set every frame.
SESSION_TRANSPORTS = ("delta", "naive")

#: Workload modes understood by :func:`build_workload`.
WORKLOAD_MODES = ("zipf", "flightpath", "mixed")


@dataclass(frozen=True)
class OpenLoopConfig:
    """One open-loop run's knobs (generation side, not engine side).

    ``offered_rate`` is requests/second *offered*, independent of
    capacity — that independence is the whole point.  ``slo_ms`` is
    the latency budget goodput is scored against, measured from each
    request's scheduled arrival.
    """

    offered_rate: float
    n_requests: int
    mode: str = "zipf"
    seed: int = 0
    roi_frac: float = 0.15
    hotspots: int = 64
    zipf_s: float = 1.1
    sessions: int = 8
    tenants: int = 4
    slo_ms: float = 50.0
    #: Flight-path advance per request, as a fraction of the ROI side.
    #: 0.3 is the historical default; delta-session benches use small
    #: values (a walking camera) where consecutive cubes mostly overlap.
    step_frac: float = 0.3
    #: Amplitude of the flight path's LOD breathing around its 0.35
    #: base, as a fraction of the store's max LOD.  Must stay below
    #: 0.35 so the LOD never collapses to zero.
    lod_breathe: float = 0.25

    def validate(self) -> None:
        """Raise :class:`~repro.errors.QueryError` on bad knobs."""
        if self.offered_rate <= 0:
            raise QueryError(
                f"offered_rate must be > 0, got {self.offered_rate}"
            )
        if self.n_requests < 1:
            raise QueryError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.mode not in WORKLOAD_MODES:
            raise QueryError(
                f"mode must be one of {WORKLOAD_MODES}, got {self.mode!r}"
            )
        if not 0 < self.roi_frac <= 1:
            raise QueryError(
                f"roi_frac must be in (0, 1], got {self.roi_frac}"
            )
        for name, value in (
            ("hotspots", self.hotspots),
            ("sessions", self.sessions),
            ("tenants", self.tenants),
        ):
            if value < 1:
                raise QueryError(f"{name} must be >= 1, got {value}")
        if self.slo_ms <= 0:
            raise QueryError(f"slo_ms must be > 0, got {self.slo_ms}")
        if not 0 < self.step_frac <= 1:
            raise QueryError(
                f"step_frac must be in (0, 1], got {self.step_frac}"
            )
        if not 0 <= self.lod_breathe < 0.35:
            raise QueryError(
                f"lod_breathe must be in [0, 0.35), got {self.lod_breathe}"
            )


def poisson_arrivals(rate: float, n: int, seed: int = 0) -> list[float]:
    """``n`` scheduled arrival offsets (seconds) of a Poisson process.

    Deterministic for a given seed, so a run is replayable and the
    admission/no-admission comparison faces the identical arrival
    pattern.
    """
    rng = random.Random(seed)
    offsets: list[float] = []
    t = 0.0
    for _ in range(n):
        t += rng.expovariate(rate)
        offsets.append(t)
    return offsets


def _terrain_extent(store: "DirectMeshStore") -> Rect:
    """The data-space rect queries are generated over."""
    space = store.rtree.data_space
    if space is None:
        raise QueryError("store is empty: no data space to generate over")
    return space.rect


def zipf_workload(
    store: "DirectMeshStore", config: OpenLoopConfig
) -> Iterator[tuple["EngineRequest", str]]:
    """Hotspot cubes sampled with zipfian popularity.

    Hotspot ``r`` (rank, 1-based) is drawn with probability
    proportional to ``r**-s``.  Each hotspot keeps a *fixed* ROI and
    LOD so popularity skew is real: the head of the distribution is
    exactly re-queriable (and therefore cacheable), the tail is cold.
    Tenants are assigned per-hotspot — a hot cube is a hot tenant,
    which is what per-tenant fair queueing must tame.
    """
    from repro.core.engine import UniformRequest

    config.validate()
    extent = _terrain_extent(store)
    rng = random.Random(config.seed)
    side = config.roi_frac * min(extent.width, extent.height)
    hotspots: list[tuple[UniformRequest, str]] = []
    for rank in range(config.hotspots):
        x0 = extent.min_x + rng.random() * max(0.0, extent.width - side)
        y0 = extent.min_y + rng.random() * max(0.0, extent.height - side)
        lod = (0.15 + 0.6 * rng.random()) * store.max_lod
        request = UniformRequest(Rect(x0, y0, x0 + side, y0 + side), lod)
        hotspots.append((request, f"tenant-{rank % config.tenants}"))
    weights = [1.0 / (rank**config.zipf_s) for rank in range(1, config.hotspots + 1)]
    while True:
        index = rng.choices(range(config.hotspots), weights=weights)[0]
        yield hotspots[index]


def flight_path_workload(
    store: "DirectMeshStore", config: OpenLoopConfig
) -> Iterator[tuple["EngineRequest", str]]:
    """Correlated sessions: each next cube overlaps the previous one.

    Every session flies a reflecting straight-line path over the
    terrain, advancing ``config.step_frac`` of the ROI side per
    request with slight heading jitter and a slowly breathing LOD
    (amplitude ``config.lod_breathe``) — consecutive cubes overlap by
    construction (the delta-friendly workload of ROADMAP item 2).
    Sessions are interleaved round-robin (request ``i`` belongs to
    session ``i % config.sessions``), each pinned to a tenant.
    """
    import math

    from repro.core.engine import UniformRequest

    config.validate()
    extent = _terrain_extent(store)
    rng = random.Random(config.seed + 1)
    side = config.roi_frac * min(extent.width, extent.height)
    span_x = max(1e-9, extent.width - side)
    span_y = max(1e-9, extent.height - side)
    step = config.step_frac * side
    sessions = []
    for index in range(config.sessions):
        sessions.append(
            {
                "x": extent.min_x + rng.random() * span_x,
                "y": extent.min_y + rng.random() * span_y,
                "heading": rng.random() * 2 * math.pi,
                "phase": rng.random() * 2 * math.pi,
                "tenant": f"tenant-{index % config.tenants}",
            }
        )
    tick = 0
    while True:
        session = sessions[tick % config.sessions]
        session["heading"] += (rng.random() - 0.5) * 0.3
        x = session["x"] + step * math.cos(session["heading"])
        y = session["y"] + step * math.sin(session["heading"])
        # Reflect at the borders so paths stay on the terrain.
        if not extent.min_x <= x <= extent.min_x + span_x:
            session["heading"] = math.pi - session["heading"]
            x = min(max(x, extent.min_x), extent.min_x + span_x)
        if not extent.min_y <= y <= extent.min_y + span_y:
            session["heading"] = -session["heading"]
            y = min(max(y, extent.min_y), extent.min_y + span_y)
        session["x"], session["y"] = x, y
        session["phase"] += 0.2
        lod = (
            0.35 + config.lod_breathe * math.sin(session["phase"])
        ) * store.max_lod
        request = UniformRequest(Rect(x, y, x + side, y + side), lod)
        yield request, session["tenant"]
        tick += 1


def build_workload(
    store: "DirectMeshStore", config: OpenLoopConfig
) -> Iterator[tuple["EngineRequest", str]]:
    """The request stream for ``config.mode`` (an endless iterator)."""
    if config.mode == "zipf":
        return zipf_workload(store, config)
    if config.mode == "flightpath":
        return flight_path_workload(store, config)

    def mixed() -> Iterator[tuple["EngineRequest", str]]:
        zipf = zipf_workload(store, config)
        flight = flight_path_workload(store, config)
        while True:
            yield next(zipf)
            yield next(flight)

    return mixed()


# -- measurement -------------------------------------------------------------


@dataclass
class OpenLoopResult:
    """One open-loop run's measurements.

    Latency percentiles are exact (computed over every request, not a
    sampled histogram); ``goodput_qps`` counts only full-fidelity
    successes inside the SLO, the number an operator actually sells.
    """

    config: OpenLoopConfig
    admission: bool
    wall_s: float
    latencies_s: list[float]
    n_ok: int
    n_errors: int
    n_degraded: int
    n_shed: int
    n_full_within_slo: int
    n_degraded_within_slo: int
    max_queue_depth: int
    dispatch_lag_s: float
    counters: dict[str, int]

    @property
    def n_requests(self) -> int:
        return len(self.latencies_s)

    @property
    def achieved_rate(self) -> float:
        """Completions per second of wall time."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_requests / self.wall_s

    @property
    def goodput_qps(self) -> float:
        """Full-fidelity successes within SLO, per second."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_full_within_slo / self.wall_s

    @property
    def degraded_goodput_qps(self) -> float:
        """Degraded (base-mesh) successes within SLO, per second."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_degraded_within_slo / self.wall_s

    def percentile_ms(self, p: float) -> float:
        """Exact ``p``-th latency percentile in milliseconds."""
        if not self.latencies_s:
            return 0.0
        samples = sorted(self.latencies_s)
        rank = (p / 100.0) * (len(samples) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return 1000.0 * (samples[lo] * (1 - frac) + samples[hi] * frac)

    def to_json(self) -> dict[str, object]:
        """The schema-versioned report payload."""
        config = self.config
        return {
            "schema": SLO_REPORT_SCHEMA,
            "mode": config.mode,
            "seed": config.seed,
            "offered_rate": round(config.offered_rate, 3),
            "requests": self.n_requests,
            "slo_ms": config.slo_ms,
            "tenants": config.tenants,
            "admission": self.admission,
            "wall_s": round(self.wall_s, 4),
            "achieved_rate": round(self.achieved_rate, 2),
            "latency_ms": {
                "p50": round(self.percentile_ms(50), 3),
                "p95": round(self.percentile_ms(95), 3),
                "p99": round(self.percentile_ms(99), 3),
                "p999": round(self.percentile_ms(99.9), 3),
                "max": round(self.percentile_ms(100), 3),
            },
            "goodput_qps": round(self.goodput_qps, 2),
            "degraded_goodput_qps": round(self.degraded_goodput_qps, 2),
            "goodput_slo_fraction": round(
                self.n_full_within_slo / max(1, self.n_requests), 4
            ),
            "counts": {
                "ok": self.n_ok,
                "errors": self.n_errors,
                "degraded": self.n_degraded,
                "shed": self.n_shed,
                "admitted": self.counters.get("engine.admitted", 0),
                "overload_degraded": self.counters.get(
                    "engine.overload_degraded", 0
                ),
                "throttled": self.counters.get("slo.tenant_throttled", 0),
            },
            "max_queue_depth": self.max_queue_depth,
            "dispatch_lag_ms": round(1000.0 * self.dispatch_lag_s, 3),
        }

    def to_text(self) -> str:
        """A compact human-readable summary."""
        config = self.config
        return "\n".join(
            [
                f"open-loop {config.mode}: offered {config.offered_rate:.0f}"
                f" req/s, achieved {self.achieved_rate:.0f} req/s over "
                f"{self.wall_s:.2f}s "
                f"({'admission on' if self.admission else 'no admission'})",
                f"  latency ms  p50 {self.percentile_ms(50):.2f}  "
                f"p95 {self.percentile_ms(95):.2f}  "
                f"p99 {self.percentile_ms(99):.2f}  "
                f"p999 {self.percentile_ms(99.9):.2f}  "
                f"max {self.percentile_ms(100):.2f}",
                f"  goodput<=SLO({config.slo_ms:.0f}ms) "
                f"{self.goodput_qps:.1f} qps full fidelity "
                f"(+{self.degraded_goodput_qps:.1f} degraded)",
                f"  outcomes: ok {self.n_ok}  errors {self.n_errors}  "
                f"degraded {self.n_degraded}  shed {self.n_shed}",
                f"  max queue depth {self.max_queue_depth}, "
                f"dispatch lag {1000.0 * self.dispatch_lag_s:.2f}ms",
            ]
        )


def run_open_loop(
    engine: "QueryEngine", config: OpenLoopConfig
) -> OpenLoopResult:
    """Drive ``engine`` open-loop and score the run against the SLO.

    The dispatcher thread (the caller) releases each request at its
    scheduled Poisson arrival time via :meth:`QueryEngine.submit` and
    never waits for completions; latency is measured from the
    *scheduled* arrival, so time spent queueing — or time the
    dispatcher itself fell behind, reported as ``dispatch_lag_s`` —
    counts against the SLO exactly as a user would experience it.
    """
    config.validate()
    arrivals = poisson_arrivals(
        config.offered_rate, config.n_requests, config.seed
    )
    workload = build_workload(engine.store, config)
    lock = threading.Lock()
    done: list[tuple[float, float, "QueryOutcome | None"]] = []
    pending = 0
    max_pending = 0
    dispatch_lag = 0.0
    start = time.monotonic()

    def completion(
        due: float,
    ) -> "Callable[[Future[QueryOutcome]], None]":
        def callback(future: "Future[QueryOutcome]") -> None:
            finished = time.monotonic() - start
            try:
                outcome = future.result()
            except Exception:  # A bug in the task must not hang the run.
                outcome = None
            nonlocal pending
            with lock:
                pending -= 1
                done.append((due, finished, outcome))

        return callback

    for due in arrivals:
        request, tenant = next(workload)
        now = time.monotonic() - start
        if now < due:
            time.sleep(due - now)
        else:
            dispatch_lag = max(dispatch_lag, now - due)
        with lock:
            pending += 1
            if pending > max_pending:
                max_pending = pending
        future = engine.submit(request, tenant=tenant)
        future.add_done_callback(completion(due))

    while True:
        with lock:
            if len(done) >= config.n_requests:
                break
        time.sleep(0.002)
    wall_s = time.monotonic() - start

    slo_s = config.slo_ms / 1000.0
    latencies: list[float] = []
    n_ok = n_errors = n_degraded = n_shed = 0
    n_full_within = n_degraded_within = 0
    for due, finished, outcome in done:
        latency = max(0.0, finished - due)
        latencies.append(latency)
        if outcome is None or not outcome.ok:
            n_errors += 1
            continue
        n_ok += 1
        if outcome.shed:
            n_shed += 1
        if outcome.degraded:
            n_degraded += 1
            if latency <= slo_s:
                n_degraded_within += 1
        elif latency <= slo_s:
            n_full_within += 1
    return OpenLoopResult(
        config=config,
        admission=engine.governor is not None,
        wall_s=wall_s,
        latencies_s=latencies,
        n_ok=n_ok,
        n_errors=n_errors,
        n_degraded=n_degraded,
        n_shed=n_shed,
        n_full_within_slo=n_full_within,
        n_degraded_within_slo=n_degraded_within,
        max_queue_depth=max_pending,
        dispatch_lag_s=dispatch_lag,
        counters=engine.registry.counters(),
    )


# -- delta-session transmission bench ----------------------------------------


@dataclass
class DeltaSessionResult:
    """One delta-session run's measurements (``BENCH_7.json`` rows).

    ``frame_latencies_s`` times each frame end-to-end *including*
    wire encoding — submit through the engine, diff, encode — because
    that is what a client waits for.  ``bytes_wire`` is the sum of
    encoded frame sizes: the currency the ISSUE 7 acceptance criterion
    is written in (>= 5x fewer bytes than naive re-query on warm
    overlapping frames).
    """

    config: OpenLoopConfig
    transport: str
    wall_s: float
    frame_latencies_s: list[float]
    bytes_wire: int
    n_degraded: int
    n_keyframes: int
    churn_sum: float

    @property
    def n_frames(self) -> int:
        return len(self.frame_latencies_s)

    @property
    def bytes_per_frame(self) -> float:
        """Mean wire bytes per frame."""
        if not self.frame_latencies_s:
            return 0.0
        return self.bytes_wire / len(self.frame_latencies_s)

    @property
    def churn_mean(self) -> float:
        """Mean per-frame churn (naive transport is always 1.0)."""
        if not self.frame_latencies_s:
            return 0.0
        return self.churn_sum / len(self.frame_latencies_s)

    def percentile_ms(self, p: float) -> float:
        """Exact ``p``-th frame-latency percentile in milliseconds."""
        if not self.frame_latencies_s:
            return 0.0
        samples = sorted(self.frame_latencies_s)
        rank = (p / 100.0) * (len(samples) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(samples) - 1)
        frac = rank - lo
        return 1000.0 * (samples[lo] * (1 - frac) + samples[hi] * frac)

    def to_json(self) -> dict[str, object]:
        """The schema-versioned report payload."""
        config = self.config
        return {
            "schema": SESSION_REPORT_SCHEMA,
            "mode": config.mode,
            "transport": self.transport,
            "seed": config.seed,
            "requests": self.n_frames,
            "sessions": config.sessions,
            "tenants": config.tenants,
            "roi_frac": config.roi_frac,
            "step_frac": config.step_frac,
            "lod_breathe": config.lod_breathe,
            "wall_s": round(self.wall_s, 4),
            "latency_ms": {
                "p50": round(self.percentile_ms(50), 3),
                "p95": round(self.percentile_ms(95), 3),
                "p99": round(self.percentile_ms(99), 3),
                "p999": round(self.percentile_ms(99.9), 3),
                "max": round(self.percentile_ms(100), 3),
            },
            "bytes_wire": self.bytes_wire,
            "bytes_per_frame": round(self.bytes_per_frame, 1),
            "n_degraded": self.n_degraded,
            "n_keyframes": self.n_keyframes,
            "churn_mean": round(self.churn_mean, 4),
        }

    def to_text(self) -> str:
        """A compact human-readable summary."""
        return (
            f"sessions/{self.transport}: {self.n_frames} frames over "
            f"{self.config.sessions} sessions in {self.wall_s:.2f}s — "
            f"{self.bytes_wire} B on wire "
            f"({self.bytes_per_frame:.0f} B/frame), "
            f"p50 {self.percentile_ms(50):.2f}ms "
            f"p99 {self.percentile_ms(99):.2f}ms, "
            f"churn {self.churn_mean:.3f}, "
            f"degraded {self.n_degraded}, keyframes {self.n_keyframes}"
        )


def run_delta_sessions(
    engine: "QueryEngine",
    config: OpenLoopConfig,
    transport: str = "delta",
    verify: bool = True,
) -> DeltaSessionResult:
    """Drive the flight-path workload as transmission sessions.

    Closed-loop per frame (a client renders one frame before asking
    for the next): request ``i`` of the flight-path stream belongs to
    session ``i % config.sessions``, matching the workload's
    round-robin interleave.  ``delta`` transport routes each frame
    through an :class:`~repro.core.streaming.EngineSession` and ships
    the encoded delta frame; ``naive`` re-queries statelessly and
    ships the full result set as a keyframe — the baseline the >= 5x
    bytes-on-wire criterion compares against.

    With ``verify`` every frame is decoded into a per-session
    :class:`~repro.core.wire.ClientMesh` and checked node-id-identical
    to the engine's answer — the tentpole correctness property — at
    the cost of one set compare per frame (excluded from latencies).
    """
    from repro.core.wire import (
        FLAG_DEGRADED,
        FLAG_KEYFRAME,
        ClientMesh,
        DeltaFrame,
        encode_frame,
    )

    config.validate()
    if config.mode != "flightpath":
        raise QueryError(
            f"delta sessions need mode='flightpath', got {config.mode!r}"
        )
    if transport not in SESSION_TRANSPORTS:
        raise QueryError(
            f"transport must be one of {SESSION_TRANSPORTS}, "
            f"got {transport!r}"
        )
    workload = build_workload(engine.store, config)
    manager = engine.sessions()
    sessions: dict[int, "EngineSession"] = {}
    clients: dict[int, "ClientMesh"] = {}
    naive_seq: dict[int, int] = {}
    latencies: list[float] = []
    bytes_wire = 0
    n_degraded = 0
    n_keyframes = 0
    churn_sum = 0.0
    start = time.monotonic()
    try:
        for index in range(config.n_requests):
            request, tenant = next(workload)
            slot = index % config.sessions
            if transport == "delta":
                session = sessions.get(slot)
                if session is None:
                    session = manager.open(tenant=tenant)
                    sessions[slot] = session
                frame_start = time.perf_counter()
                result = session.update(request)
                latencies.append(time.perf_counter() - frame_start)
                payload = result.payload
                bytes_wire += len(payload)
                churn_sum += result.delta.churn
                if result.frame.degraded:
                    n_degraded += 1
                if result.frame.keyframe:
                    n_keyframes += 1
                expected = session.active_ids
            else:
                frame_start = time.perf_counter()
                outcome = engine.submit(request, tenant=tenant).result()
                if outcome.error is not None or outcome.result is None:
                    raise outcome.error or QueryError(
                        "engine returned no result"
                    )
                seq = naive_seq.get(slot, 0)
                naive_seq[slot] = seq + 1
                flags = FLAG_KEYFRAME
                if outcome.degraded:
                    flags |= FLAG_DEGRADED
                nodes = outcome.result.nodes
                frame = DeltaFrame(
                    seq,
                    tuple(nodes[node_id] for node_id in sorted(nodes)),
                    (),
                    flags,
                )
                payload = encode_frame(frame)
                latencies.append(time.perf_counter() - frame_start)
                bytes_wire += len(payload)
                churn_sum += 1.0
                if outcome.degraded:
                    n_degraded += 1
                n_keyframes += 1
                expected = set(nodes)
            if verify:
                client = clients.get(slot)
                if client is None:
                    client = ClientMesh()
                    clients[slot] = client
                client.apply(payload)
                if client.active_ids != expected:
                    raise QueryError(
                        "client mesh diverged from the engine answer",
                        frame=index,
                        session=slot,
                    )
    finally:
        for session in sessions.values():
            manager.close(session.session_id)
    return DeltaSessionResult(
        config=config,
        transport=transport,
        wall_s=time.monotonic() - start,
        frame_latencies_s=latencies,
        bytes_wire=bytes_wire,
        n_degraded=n_degraded,
        n_keyframes=n_keyframes,
        churn_sum=churn_sum,
    )


def measure_capacity(
    store: "DirectMeshStore",
    config: OpenLoopConfig,
    workers: int,
    sample: int = 64,
    repeat: int = 2,
    **engine_kwargs: object,
) -> float:
    """Closed-loop capacity (qps) of the engine on this workload.

    Replays a sample of the configured workload through the classic
    closed-loop ``measure_throughput`` — the number an open-loop run
    should be calibrated against (the acceptance runs use ``2x`` this).
    """
    from repro.bench.runner import measure_throughput

    requests = [
        request
        for request, _ in _take(build_workload(store, config), sample)
    ]
    report = measure_throughput(
        store, requests, workers, repeat=repeat, **engine_kwargs
    )
    return report.qps


def suggest_budget(
    store: "DirectMeshStore",
    config: OpenLoopConfig,
    workers: int,
    sample: int = 64,
) -> float:
    """A reasonable :class:`~repro.core.engine.CostGovernor` budget.

    Samples the configured workload and prices it with the store's DA
    cost model; the budget is twice what ``workers`` threads hold in
    flight at the mean cost — enough queue to keep workers busy,
    little enough that waiting time stays a small multiple of service
    time.
    """
    if workers < 1:
        raise QueryError(f"workers must be >= 1, got {workers}")
    costs = [
        max(1.0, store.cost_model.estimate(request.query_box(store.e_cap)))
        for request, _ in _take(build_workload(store, config), sample)
    ]
    mean = sum(costs) / len(costs)
    return 2.0 * workers * mean


def _take(
    iterator: Iterator[tuple["EngineRequest", str]], n: int
) -> list[tuple["EngineRequest", str]]:
    return [next(iterator) for _ in range(n)]


# -- report schema -----------------------------------------------------------

_REQUIRED_NUMBERS = (
    "offered_rate",
    "requests",
    "slo_ms",
    "wall_s",
    "achieved_rate",
    "goodput_qps",
    "degraded_goodput_qps",
    "goodput_slo_fraction",
    "max_queue_depth",
    "dispatch_lag_ms",
)
_REQUIRED_LATENCIES = ("p50", "p95", "p99", "p999", "max")
_REQUIRED_COUNTS = (
    "ok",
    "errors",
    "degraded",
    "shed",
    "admitted",
    "overload_degraded",
    "throttled",
)


def validate_slo_report(report: object) -> list[str]:
    """Schema-check one serialized run; returns problems ([] = valid).

    Deliberately dependency-free (no jsonschema in the image): the
    checks cover key presence, numeric types, and the version tag —
    enough for the smoke job to reject a silently mangled report.
    """
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    if report.get("schema") != SLO_REPORT_SCHEMA:
        problems.append(
            f"schema must be {SLO_REPORT_SCHEMA!r}, got "
            f"{report.get('schema')!r}"
        )
    if report.get("mode") not in WORKLOAD_MODES:
        problems.append(f"mode must be one of {WORKLOAD_MODES}")
    if not isinstance(report.get("admission"), bool):
        problems.append("admission must be a boolean")
    for key in _REQUIRED_NUMBERS:
        value = report.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{key} must be a number, got {value!r}")
    latency = report.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append("latency_ms must be an object")
    else:
        for key in _REQUIRED_LATENCIES:
            value = latency.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"latency_ms.{key} must be a number")
    counts = report.get("counts")
    if not isinstance(counts, dict):
        problems.append("counts must be an object")
    else:
        for key in _REQUIRED_COUNTS:
            value = counts.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                problems.append(f"counts.{key} must be an integer")
    return problems


_REQUIRED_SESSION_NUMBERS = (
    "requests",
    "sessions",
    "tenants",
    "roi_frac",
    "step_frac",
    "lod_breathe",
    "wall_s",
    "bytes_wire",
    "bytes_per_frame",
    "n_degraded",
    "n_keyframes",
    "churn_mean",
)


def validate_session_report(report: object) -> list[str]:
    """Schema-check one session run; returns problems ([] = valid).

    Same dependency-free style as :func:`validate_slo_report`: key
    presence, numeric types, and the version/transport tags.
    """
    problems: list[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    if report.get("schema") != SESSION_REPORT_SCHEMA:
        problems.append(
            f"schema must be {SESSION_REPORT_SCHEMA!r}, got "
            f"{report.get('schema')!r}"
        )
    if report.get("mode") not in WORKLOAD_MODES:
        problems.append(f"mode must be one of {WORKLOAD_MODES}")
    if report.get("transport") not in SESSION_TRANSPORTS:
        problems.append(
            f"transport must be one of {SESSION_TRANSPORTS}, got "
            f"{report.get('transport')!r}"
        )
    for key in _REQUIRED_SESSION_NUMBERS:
        value = report.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{key} must be a number, got {value!r}")
    latency = report.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append("latency_ms must be an object")
    else:
        for key in _REQUIRED_LATENCIES:
            value = latency.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"latency_ms.{key} must be a number")
    return problems
