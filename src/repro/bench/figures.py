"""One experiment definition per paper figure and in-text table.

Every function returns a :class:`~repro.bench.reporting.SeriesTable`
whose rows are what the corresponding figure plots: the swept
parameter against average disk accesses per method.  DESIGN.md's
per-experiment index maps figure ids to these functions; the
``benchmarks/`` suite executes them and records results.
"""

from __future__ import annotations

from repro.bench.cache import ExperimentEnv
from repro.bench.reporting import SeriesTable
from repro.bench.runner import (
    UNIFORM_METHODS,
    VIEWDEP_METHODS,
    average_over,
    measure_uniform,
    measure_viewdep,
)
from repro.bench.workload import (
    ANGLE_SWEEP,
    FIXED_ANGLE_FRACTION,
    FIXED_EMIN_FRACTION,
    LOD_SWEEP,
    Workload,
)
from repro.core.connectivity import connection_statistics
from repro.storage.record import PM_RECORD_SIZE, dm_record_size
from repro.terrain.datasets import TerrainDataset

__all__ = [
    "uniform_varying_roi",
    "uniform_varying_lod",
    "viewdep_varying_roi",
    "viewdep_varying_lod",
    "viewdep_varying_angle",
    "connection_table",
    "storage_overhead_table",
]


def uniform_varying_roi(
    env: ExperimentEnv,
    workload: Workload,
    roi_sweep: list[float],
    experiment: str,
) -> SeriesTable:
    """Figure 6(a)/(c): uniform mesh, varying ROI, LOD = dataset average."""
    table = SeriesTable(
        experiment,
        f"uniform mesh, varying ROI — {env.dataset.name} "
        f"({env.dataset.n_points} points)",
        "roi_pct",
        UNIFORM_METHODS,
        meta=_meta(env, workload),
    )
    lod = workload.average_lod()
    centers = workload.centers()
    for fraction in roi_sweep:
        values = average_over(
            centers,
            lambda c: measure_uniform(env, workload.roi(fraction, c), lod),
        )
        table.add_row(fraction * 100, values)
    return table


def uniform_varying_lod(
    env: ExperimentEnv,
    workload: Workload,
    fixed_roi: float,
    experiment: str,
    lod_sweep: list[float] = LOD_SWEEP,
) -> SeriesTable:
    """Figure 6(b)/(d): uniform mesh, varying LOD, fixed ROI."""
    table = SeriesTable(
        experiment,
        f"uniform mesh, varying LOD — {env.dataset.name} "
        f"(ROI {fixed_roi:.0%})",
        "lod_pct_of_max",
        UNIFORM_METHODS,
        meta=_meta(env, workload),
    )
    centers = workload.centers()
    for fraction in lod_sweep:
        lod = workload.uniform_lod(fraction)
        values = average_over(
            centers,
            lambda c: measure_uniform(env, workload.roi(fixed_roi, c), lod),
        )
        table.add_row(fraction * 100, values)
    return table


def viewdep_varying_roi(
    env: ExperimentEnv,
    workload: Workload,
    roi_sweep: list[float],
    experiment: str,
) -> SeriesTable:
    """Figure 8(a)/(d): viewpoint-dependent mesh, varying ROI.

    Angle fixed at half ``theta_max``; ``e_min`` at the dataset's
    average LOD (the analog of the uniform sweeps' LOD setting).
    """
    table = SeriesTable(
        experiment,
        f"viewpoint-dependent mesh, varying ROI — {env.dataset.name}",
        "roi_pct",
        VIEWDEP_METHODS,
        meta=_meta(env, workload),
    )
    e_min = workload.average_lod()
    centers = workload.centers()
    for fraction in roi_sweep:

        def measure(c):
            roi = workload.roi(fraction, c)
            plane = workload.plane(roi, e_min, FIXED_ANGLE_FRACTION)
            return measure_viewdep(env, plane)

        table.add_row(fraction * 100, average_over(centers, measure))
    return table


def viewdep_varying_lod(
    env: ExperimentEnv,
    workload: Workload,
    fixed_roi: float,
    experiment: str,
    emin_sweep: list[float] = LOD_SWEEP,
) -> SeriesTable:
    """Figure 8(b)/(e): viewpoint-dependent mesh, varying ``e_min``.

    Angle stays at half ``theta_max``; ``e_max`` follows from the
    angle, as in the paper.
    """
    table = SeriesTable(
        experiment,
        f"viewpoint-dependent mesh, varying e_min — {env.dataset.name} "
        f"(ROI {fixed_roi:.0%})",
        "emin_pct_of_max",
        VIEWDEP_METHODS,
        meta=_meta(env, workload),
    )
    centers = workload.centers()
    for fraction in emin_sweep:
        e_min = workload.uniform_lod(fraction)

        def measure(c):
            roi = workload.roi(fixed_roi, c)
            plane = workload.plane(roi, e_min, FIXED_ANGLE_FRACTION)
            return measure_viewdep(env, plane)

        table.add_row(fraction * 100, average_over(centers, measure))
    return table


def viewdep_varying_angle(
    env: ExperimentEnv,
    workload: Workload,
    fixed_roi: float,
    experiment: str,
    angle_sweep: list[float] = ANGLE_SWEEP,
) -> SeriesTable:
    """Figure 8(c)/(f): viewpoint-dependent mesh, varying angle.

    ``e_min`` fixed at 1% of the maximum LOD "to allow for a large
    angle range" (paper Section 6.2).
    """
    table = SeriesTable(
        experiment,
        f"viewpoint-dependent mesh, varying angle — {env.dataset.name} "
        f"(ROI {fixed_roi:.0%}, e_min 1%)",
        "angle_pct_of_max",
        VIEWDEP_METHODS,
        meta=_meta(env, workload),
    )
    e_min = workload.uniform_lod(FIXED_EMIN_FRACTION)
    centers = workload.centers()
    for fraction in angle_sweep:

        def measure(c):
            roi = workload.roi(fixed_roi, c)
            plane = workload.plane(roi, e_min, fraction)
            return measure_viewdep(env, plane)

        table.add_row(fraction * 100, average_over(centers, measure))
    return table


def connection_table(datasets: list[TerrainDataset]) -> SeriesTable:
    """Section 4 in-text statistics: similar-LOD vs total connections.

    The paper reports ~12 similar-LOD connection points on both
    datasets versus ~180 (2M) and ~840 (17M) total: the similar-LOD
    count is size-independent while the total grows with the dataset.
    """
    table = SeriesTable(
        "tab_conn",
        "connection points per node: similar-LOD list vs total",
        "n_points",
        ["avg_similar", "max_similar", "avg_total", "max_total"],
    )
    for dataset in datasets:
        stats = connection_statistics(
            dataset.pm, dataset.connections, include_totals=True
        )
        table.add_row(dataset.n_points, {k: round(v, 1) for k, v in stats.items()})
    return table


def storage_overhead_table(env: ExperimentEnv) -> SeriesTable:
    """DM's storage overhead versus PM ("a very small overhead").

    Rows: bytes per node and total pages for each representation.
    """
    report = env.dm.build_report
    table = SeriesTable(
        "tab_storage",
        f"storage per node — {env.dataset.name}",
        "metric",
        ["PM", "DM"],
    )
    n = len(env.dataset.pm.nodes)
    if report is not None:
        dm_bytes = report.total_record_bytes / max(1, report.n_nodes)
        avg_conn = report.avg_connections
    else:
        avg_conn = sum(
            len(v) for v in env.dataset.connections.values()
        ) / max(1, n)
        dm_bytes = dm_record_size(int(round(avg_conn)))
    table.add_row(0, {"PM": PM_RECORD_SIZE, "DM": round(dm_bytes, 1)})
    table.meta["avg_connections"] = round(avg_conn, 2)
    table.meta["n_nodes"] = n
    return table


def _meta(env: ExperimentEnv, workload: Workload) -> dict[str, object]:
    return {
        "dataset": env.dataset.name,
        "n_points": env.dataset.n_points,
        "locations": workload.n_locations,
        "seed": workload.seed,
    }
