"""Workload generation for the paper's experiments.

The paper's methodology (Section 6): every measurement is "the average
value of creating the same mesh (same ROI and LOD) at 20
randomly-selected locations", the ROI is a percentage of the dataset
area, the LOD a percentage of the dataset maximum, and
viewpoint-dependent queries add the *angle* parameter with maximum
``theta_max = arctan(LOD_max / ROI)`` (Figure 7).

Sweep ranges follow the paper: ROI up to ~20% (2M) / ~10% (17M) "to
allow for a mesh with reasonable data density"; LOD "range that
contains substantial number of points"; angle as a percentage of
``theta_max`` with ``e_min`` fixed at 1% for the angle sweep.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geometry.plane import QueryPlane, max_angle
from repro.geometry.primitives import Rect
from repro.terrain.datasets import TerrainDataset

__all__ = [
    "Workload",
    "DEFAULT_LOCATIONS",
    "ROI_SWEEP_2M",
    "ROI_SWEEP_17M",
    "LOD_SWEEP",
    "ANGLE_SWEEP",
]

#: The paper averages over 20 random locations.
DEFAULT_LOCATIONS = 20

#: ROI sizes as fractions of dataset area (paper Figure 6(a)/(c)).
ROI_SWEEP_2M = [0.025, 0.05, 0.10, 0.15, 0.20]
ROI_SWEEP_17M = [0.01, 0.025, 0.05, 0.075, 0.10]

#: LOD values as fractions of the dataset maximum (Figure 6(b)/(d)).
LOD_SWEEP = [0.01, 0.02, 0.05, 0.10, 0.20, 0.50]

#: Angles as fractions of theta_max (Figure 8(c)/(f)).
ANGLE_SWEEP = [0.1, 0.25, 0.5, 0.75, 0.9]

#: Fixed parameters the paper uses elsewhere in the sweeps.
FIXED_ROI_2M = 0.10  # Figure 6(b): "ROI is set to 10% for the 2M dataset".
FIXED_ROI_17M = 0.05  # "and 5% for the 17M dataset".
FIXED_ANGLE_FRACTION = 0.5  # Figure 8(a)/(b): "half the value of theta_max".
FIXED_EMIN_FRACTION = 0.01  # Figure 8(c): "e_min is set to 1%".


@dataclass
class Workload:
    """Seeded query-location generator for one dataset."""

    dataset: TerrainDataset
    n_locations: int = DEFAULT_LOCATIONS
    seed: int = 1234

    def centers(self) -> list[tuple[float, float]]:
        """The random query centres (deterministic for the seed)."""
        rng = random.Random(self.seed)
        bounds = self.dataset.bounds()
        return [
            (
                rng.uniform(bounds.min_x, bounds.max_x),
                rng.uniform(bounds.min_y, bounds.max_y),
            )
            for _ in range(self.n_locations)
        ]

    # -- query construction -------------------------------------------------

    def roi(self, fraction: float, center: tuple[float, float]) -> Rect:
        """A square ROI of ``fraction`` of the dataset area."""
        return self.dataset.roi_for_fraction(fraction, *center)

    def uniform_lod(self, fraction_of_max: float) -> float:
        """A LOD value as a fraction of the dataset maximum."""
        return self.dataset.pm.max_lod() * fraction_of_max

    def average_lod(self) -> float:
        """The dataset's average LOD (used by the ROI sweeps)."""
        return self.dataset.pm.average_lod()

    def theta_max(self, roi: Rect) -> float:
        """Paper Figure 7: ``arctan(LOD_max / ROI extent)``."""
        return max_angle(self.dataset.pm.max_lod(), roi.height)

    def plane(
        self,
        roi: Rect,
        e_min: float,
        angle_fraction: float,
    ) -> QueryPlane:
        """A viewpoint-dependent query plane.

        ``angle_fraction`` scales ``theta_max``; the viewer looks along
        +y (the paper's simplifying presentation; the processors accept
        arbitrary directions).
        """
        angle = self.theta_max(roi) * angle_fraction
        angle = min(angle, math.pi / 2 - 1e-6)
        plane = QueryPlane.from_angle(roi, e_min, angle)
        # Clamp e_max to just above the dataset maximum: a taller cube
        # retrieves nothing extra and distorts cost-model estimates.
        cap = self.dataset.pm.max_lod() * 1.01
        if plane.e_max > cap:
            plane = QueryPlane(roi, e_min, cap, plane.direction)
        return plane
