"""Rule engine for ``reprolint`` — project-specific static analysis.

Generic linters catch generic mistakes; this engine exists for the
invariants that are *ours*: lock discipline around shared state, the
``e_cap`` probe clamp, double-checked lazy initialisation, typed
errors instead of ``assert``, the metric-name registry.  Each of those
started life as a shipped bug — the rules in :mod:`repro.analysis.rules`
are their machine-checked post-mortems.

The engine is deliberately small:

* a :class:`Rule` subclasses declare ``id``/``title`` and implement
  ``check(ctx)`` yielding :class:`Violation`\\ s — most rules fit in
  ~30 lines on top of the shared AST helpers below;
* per-line suppressions (``# reprolint: disable=R2 <reason>``) and
  per-file suppressions (``# reprolint: disable-file=R2 <reason>``)
  are parsed from comment tokens.  A suppression **must** carry a
  reason; a bare or malformed pragma is itself reported (rule ``R0``);
* :func:`check_paths` walks directories, skipping caches and the
  ``reprolint_fixtures`` corpus (which is intentionally-bad code);
* project rules (:class:`ProjectRule`) see *every* file at once via a
  :class:`ProjectContext` — that is how the interprocedural lockset
  rules (R9–R11 in :mod:`repro.analysis.locksets`) follow a call from
  ``engine.py`` into ``cache.py`` while a lock is held.

Paths are normalised to POSIX form relative to the repository root so
rules can scope themselves (e.g. R4 applies only under ``src/``).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "FileContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "check_paths",
    "check_source",
    "register",
]

#: Directory names never descended into when walking paths.
SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".pytest_cache",
        ".benchmarks",
        ".data",
        "reprolint_fixtures",
    }
)

#: Method names that mutate their receiver in place — used by the
#: lock-discipline rule to infer which attributes a lock protects.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<ids>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)?(?P<reason>.*)$"
)
_PRAGMA_ANY = re.compile(r"#\s*reprolint\s*:")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class Suppressions:
    """Parsed suppression pragmas for one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)
    malformed: list[Violation] = field(default_factory=list)

    def covers(self, violation: Violation) -> bool:
        if violation.rule_id in self.file_wide:
            return True
        return violation.rule_id in self.by_line.get(violation.line, set())


class FileContext:
    """Everything a rule needs to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        #: POSIX path relative to the repository root (or as given).
        self.path = path
        self.source = source
        self.tree = tree

    @property
    def in_src(self) -> bool:
        """True when the file lives under the ``src/`` tree."""
        return self.path.startswith("src/") or "/src/" in self.path

    def path_endswith(self, *suffixes: str) -> bool:
        """True when the path ends with any of ``suffixes``."""
        return self.path.endswith(suffixes)


class ProjectContext:
    """Every parsed file of one lint run, for whole-program rules.

    Project rules share expensive derived structures (the call graph,
    the lockset fixed point) through :meth:`memo`, so three rules over
    the same analysis cost one analysis.
    """

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self.by_path = {ctx.path: ctx for ctx in self.files}
        self._memo: dict[str, object] = {}

    def memo(self, key: str, build: "Callable[[ProjectContext], object]") -> object:
        """Cache ``build(self)`` under ``key`` for the lifetime of the run."""
        if key not in self._memo:
            self._memo[key] = build(self)
        return self._memo[key]


class Rule:
    """Base class for reprolint rules.

    Subclasses set :attr:`id` (``"R<n>"``), :attr:`title`, and
    implement :meth:`check`.  Register with the :func:`register`
    decorator; adding a rule is: subclass, register, drop a bad/good
    fixture pair into ``tests/reprolint_fixtures/``.
    """

    id: str = ""
    title: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole project, not one file.

    Subclasses implement :meth:`check_project` instead of
    :meth:`check`; the driver runs them once per lint invocation after
    every file has parsed, and routes each finding back through the
    suppressions of the file it names.
    """

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError

    def project_violation(
        self, path: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.id,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by numeric id (R2 before R10)."""
    return [
        _REGISTRY[rule_id]
        for rule_id in sorted(_REGISTRY, key=lambda rid: int(rid[1:]))
    ]


# -- shared AST helpers (used by several rules) ------------------------------


def is_self_attr(node: ast.AST) -> bool:
    """True for ``self.<attr>`` attribute nodes."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


#: Call names that construct a lock.  ``watched_lock`` is the
#: env-gated instrumented wrapper from :mod:`repro.obs.lockwatch` —
#: recognising it here keeps R1/R3/R6 and the lockset analysis sighted
#: after a class switches to instrumented locks.
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "watched_lock"})


def _is_lock_call(node: ast.AST) -> bool:
    """True for ``threading.Lock()`` / ``RLock()`` / ``watched_lock()``
    style calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    return name in LOCK_CONSTRUCTORS


def _is_lock_factory(node: ast.AST) -> bool:
    """True for ``field(default_factory=threading.Lock)`` style calls."""
    if not isinstance(node, ast.Call):
        return False
    for keyword in node.keywords:
        if keyword.arg == "default_factory":
            value = keyword.value
            name = value.attr if isinstance(value, ast.Attribute) else (
                value.id if isinstance(value, ast.Name) else ""
            )
            if name in LOCK_CONSTRUCTORS:
                return True
    return False


def class_lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Names of attributes holding a lock (or a list of locks).

    Detects ``self._x = threading.Lock()`` (and ``RLock``), stripe
    lists built from comprehensions/lists of lock calls, and dataclass
    fields with a lock ``default_factory`` or a ``threading.Lock``
    annotation.
    """
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if not is_self_attr(target):
                continue
            if _is_lock_call(value):
                locks.add(target.attr)
            elif isinstance(value, ast.ListComp) and _is_lock_call(value.elt):
                locks.add(target.attr)
            elif isinstance(value, ast.List) and value.elts and all(
                _is_lock_call(elt) for elt in value.elts
            ):
                locks.add(target.attr)
    # Dataclass-style: class-level annotated fields.
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotation = stmt.annotation
            name = annotation.attr if isinstance(
                annotation, ast.Attribute
            ) else (annotation.id if isinstance(annotation, ast.Name) else "")
            if name in {"Lock", "RLock"}:
                locks.add(stmt.target.id)
            elif stmt.value is not None and _is_lock_factory(stmt.value):
                locks.add(stmt.target.id)
    return locks


def is_with_lock(node: ast.With, lock_attrs: set[str]) -> bool:
    """True when any item of the ``with`` is ``self.<lock>`` (or a
    subscript of one, for stripe lists)."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if is_self_attr(expr) and expr.attr in lock_attrs:
            return True
    return False


def iter_methods(
    cls: ast.ClassDef,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


@dataclass(frozen=True)
class AttrAccess:
    """One ``self._x`` access inside a method."""

    attr: str
    node: ast.Attribute
    method: str
    under_lock: bool
    is_write: bool


def iter_attr_accesses(
    method: ast.FunctionDef | ast.AsyncFunctionDef, lock_attrs: set[str]
) -> Iterator[AttrAccess]:
    """Every private ``self._x`` access in ``method``, annotated with
    whether it happens under an owned lock and whether it mutates.

    Methods whose name ends in ``_locked`` are treated as fully under
    lock — that suffix is the project's caller-holds-the-lock
    contract.
    """
    parents: dict[int, ast.AST] = {}
    for parent in ast.walk(method):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent

    locked_nodes: set[int] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.With) and is_with_lock(node, lock_attrs):
            for child in ast.walk(node):
                locked_nodes.add(id(child))

    always_locked = method.name.endswith("_locked")

    for node in ast.walk(method):
        if not is_self_attr(node):
            continue
        attr = node.attr
        if not attr.startswith("_") or attr in lock_attrs:
            continue
        yield AttrAccess(
            attr=attr,
            node=node,
            method=method.name,
            under_lock=always_locked or id(node) in locked_nodes,
            is_write=_is_write_access(node, parents),
        )


def _is_write_access(
    node: ast.Attribute, parents: dict[int, ast.AST]
) -> bool:
    """Does this access mutate the attribute (or its contents)?"""
    if isinstance(node.ctx, (ast.Store, ast.Del)):
        return True
    parent = parents.get(id(node))
    # self._x[k] = v  /  self._x[k] += v  /  del self._x[k]
    if (
        isinstance(parent, ast.Subscript)
        and parent.value is node
        and isinstance(parent.ctx, (ast.Store, ast.Del))
    ):
        return True
    # self._x.append(v) and friends.
    if (
        isinstance(parent, ast.Attribute)
        and parent.value is node
        and parent.attr in MUTATOR_METHODS
    ):
        grandparent = parents.get(id(parent))
        if isinstance(grandparent, ast.Call) and grandparent.func is parent:
            return True
    return False


def iter_statement_lists(tree: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every list of statements in the tree (bodies, else/finally...)."""
    for node in ast.walk(tree):
        for field_name in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field_name, None)
            if (
                isinstance(stmts, list)
                and stmts
                and isinstance(stmts[0], ast.stmt)
            ):
                yield stmts


# -- suppression parsing -----------------------------------------------------


def parse_suppressions(
    path: str, source: str, known_ids: set[str]
) -> Suppressions:
    """Extract ``# reprolint: ...`` pragmas from comment tokens."""
    suppressions = Suppressions()
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions  # Parse errors surface via E0 instead.

    code_lines: set[int] = set()
    for token in tokens:
        if token.type not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(token.start[0])

    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if not _PRAGMA_ANY.search(token.string):
            continue
        line = token.start[0]
        match = _PRAGMA.search(token.string)
        ids_group = match.group("ids") if match else None
        reason = (match.group("reason") or "").strip() if match else ""
        if match is None or not ids_group:
            suppressions.malformed.append(
                Violation(
                    path,
                    line,
                    token.start[1],
                    "R0",
                    "malformed reprolint pragma: expected "
                    "'# reprolint: disable=R<n>[,R<m>] <reason>'",
                )
            )
            continue
        rule_ids = {part.strip() for part in ids_group.split(",")}
        unknown = sorted(rule_ids - known_ids)
        if unknown:
            suppressions.malformed.append(
                Violation(
                    path,
                    line,
                    token.start[1],
                    "R0",
                    f"suppression names unknown rule(s): {', '.join(unknown)}",
                )
            )
            continue
        if not reason:
            suppressions.malformed.append(
                Violation(
                    path,
                    line,
                    token.start[1],
                    "R0",
                    "suppression must carry a reason: "
                    f"'# reprolint: disable={ids_group} <why>'",
                )
            )
            continue
        if match.group("kind") == "disable-file":
            suppressions.file_wide |= rule_ids
        else:
            targets = {line}
            if line not in code_lines:  # Standalone comment: next line.
                targets.add(line + 1)
            for target in targets:
                suppressions.by_line.setdefault(target, set()).update(
                    rule_ids
                )
    return suppressions


# -- driving -----------------------------------------------------------------


def _parse_file(
    source: str, path: str, known_ids: set[str]
) -> tuple[FileContext | None, Suppressions, list[Violation]]:
    """Parse one file into a context, its suppressions, and any E0."""
    suppressions = parse_suppressions(path, source, known_ids)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        error = Violation(
            path,
            exc.lineno or 1,
            (exc.offset or 1) - 1,
            "E0",
            f"file does not parse: {exc.msg}",
        )
        return None, suppressions, [error]
    return FileContext(path, source, tree), suppressions, []


def _run_rules(
    active: Sequence[Rule],
    contexts: Sequence[FileContext],
    suppressions: dict[str, Suppressions],
) -> list[Violation]:
    """Per-file rules over each file, then project rules over all."""
    found: list[Violation] = []
    project: ProjectContext | None = None
    for rule in active:
        if isinstance(rule, ProjectRule):
            if project is None:
                project = ProjectContext(contexts)
            candidates = rule.check_project(project)
        else:
            candidates = (
                violation
                for ctx in contexts
                for violation in rule.check(ctx)
            )
        for violation in candidates:
            cover = suppressions.get(violation.path)
            if cover is None or not cover.covers(violation):
                found.append(violation)
    return found


def check_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Run the rule set over one source blob.

    ``path`` scopes path-sensitive rules (R2's sanctioned wrappers,
    R4's ``src/`` restriction); pass the repo-relative POSIX path.
    Project rules see a one-file project — that is what keeps the
    fixture corpus able to exercise R9–R11 file by file.
    """
    active = list(rules) if rules is not None else all_rules()
    known_ids = {rule.id for rule in active} | {
        rule.id for rule in all_rules()
    }
    ctx, suppressions, errors = _parse_file(source, path, known_ids)
    if ctx is None:
        return errors
    found = _run_rules(active, [ctx], {path: suppressions})
    found.extend(suppressions.malformed)
    found.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return found


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths``, skipping :data:`SKIP_DIRS`."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames if name not in SKIP_DIRS
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield Path(dirpath) / filename


def check_paths(
    paths: Iterable[str | Path],
    root: str | Path | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint every Python file under ``paths``.

    ``root`` (default: the current directory) anchors the
    repo-relative paths that path-sensitive rules and reports use.
    """
    anchor = Path(root) if root is not None else Path.cwd()
    active = list(rules) if rules is not None else all_rules()
    known_ids = {rule.id for rule in active} | {
        rule.id for rule in all_rules()
    }
    contexts: list[FileContext] = []
    suppressions: dict[str, Suppressions] = {}
    found: list[Violation] = []
    for file_path in iter_python_files(paths):
        try:
            relative = file_path.resolve().relative_to(anchor.resolve())
            virtual = relative.as_posix()
        except ValueError:
            virtual = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        ctx, cover, errors = _parse_file(source, virtual, known_ids)
        found.extend(errors)
        found.extend(cover.malformed)
        suppressions[virtual] = cover
        if ctx is not None:
            contexts.append(ctx)
    found.extend(_run_rules(active, contexts, suppressions))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return found
