"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean; 1 — violations found; 2 — usage error.

Machine-readable output for CI annotation:

* ``--json PATH`` — findings as one JSON object (``-`` for stdout);
* ``--sarif PATH`` — SARIF 2.1.0, the format GitHub code scanning
  and most editors ingest;
* ``--lock-graph PATH`` — dump the statically inferred lock-order
  graph (no linting; used by the lockwatch CI cross-check).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis import all_rules, check_paths
from repro.analysis.engine import Violation

DEFAULT_PATHS = ("src", "tests", "benchmarks")

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def violations_json(violations: Sequence[Violation]) -> dict[str, object]:
    """The ``--json`` payload."""
    counts = Counter(violation.rule_id for violation in violations)
    return {
        "version": 1,
        "violations": [
            {
                "path": violation.path,
                "line": violation.line,
                "col": violation.col,
                "rule": violation.rule_id,
                "message": violation.message,
            }
            for violation in violations
        ],
        "counts": {rule_id: counts[rule_id] for rule_id in sorted(counts)},
    }


def violations_sarif(violations: Sequence[Violation]) -> dict[str, object]:
    """A minimal SARIF 2.1.0 log of the findings."""
    rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.title},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": violation.path},
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        for violation in violations
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/docs/reprolint"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def _write_payload(payload: dict[str, object], destination: str) -> None:
    text = json.dumps(payload, indent=2, sort_keys=False)
    if destination == "-":
        print(text)
    else:
        Path(destination).write_text(text + "\n", encoding="utf-8")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: project-specific static analysis "
            "(lock discipline, e_cap clamping, lazy-init safety, "
            "typed invariants, metric registry, interprocedural "
            "locksets)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule violation count after the findings",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write findings as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="write findings as SARIF 2.1.0 to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--lock-graph",
        metavar="PATH",
        help=(
            "dump the static lock-order graph for the given paths as "
            "JSON ('-' for stdout) and exit without linting"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    paths = args.paths or [
        path for path in DEFAULT_PATHS if Path(path).exists()
    ]
    if not paths:
        print("reprolint: no paths to lint", file=sys.stderr)
        return 2
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"reprolint: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    if args.lock_graph:
        from repro.analysis.locksets import analyze_paths

        analysis = analyze_paths(paths)
        _write_payload(analysis.order.to_json(), args.lock_graph)
        return 0

    violations = check_paths(paths)
    for violation in violations:
        print(violation.render())
    if args.json:
        _write_payload(violations_json(violations), args.json)
    if args.sarif:
        _write_payload(violations_sarif(violations), args.sarif)
    if args.statistics and violations:
        counts = Counter(violation.rule_id for violation in violations)
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}")
    if violations:
        print(
            f"reprolint: {len(violations)} violation(s)", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
