"""CLI entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean; 1 — violations found; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.analysis import all_rules, check_paths

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: project-specific static analysis "
            "(lock discipline, e_cap clamping, lazy-init safety, "
            "typed invariants, metric registry)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule set and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print a per-rule violation count after the findings",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    paths = args.paths or [
        path for path in DEFAULT_PATHS if Path(path).exists()
    ]
    if not paths:
        print("reprolint: no paths to lint", file=sys.stderr)
        return 2
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"reprolint: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    violations = check_paths(paths)
    for violation in violations:
        print(violation.render())
    if args.statistics and violations:
        counts = Counter(violation.rule_id for violation in violations)
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}")
    if violations:
        print(
            f"reprolint: {len(violations)} violation(s)", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
