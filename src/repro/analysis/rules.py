"""The reprolint rule set.

Every rule is grounded in a bug this repository actually shipped (and
fixed) or a standing invariant of the design:

========  ==================================================================
R1        Lock discipline: attributes a lock protects must be accessed
          under it (the ``Histogram.snapshot()`` race).
R2        Clamped probes: R*-tree range queries only through the
          sanctioned wrappers, query boxes through :func:`clamp_lod`
          (the ``e_cap`` blind spot).
R3        Lazy init on shared objects needs double-checked locking
          (the ``DMQueryResult._edges`` race).
R4        No load-bearing ``assert`` under ``src/`` — raise typed
          errors from :mod:`repro.errors` (asserts vanish under -O).
R5        Metric names come from :data:`repro.obs.metrics.METRIC_NAMES`
          (typos fork series silently).
R6        No bare ``Lock.acquire()`` without try/finally release or a
          context manager.
R7        Raw page I/O (``os.pread``/``os.pwrite``) only inside the
          storage layer's sanctioned modules — everything else goes
          through :class:`~repro.storage.pager.Pager`, which seals and
          verifies page checksums.
R8        Registry hygiene: entries added to ``METRIC_NAMES`` /
          ``METRIC_PREFIXES`` follow the ``family.metric`` grammar
          with a family declared in ``METRIC_FAMILIES`` (a misspelt
          family dodges every dashboard that groups by family).
R12       Epoch snapshot discipline: the engine's swappable
          ``(store, epoch)`` slot is pinned once per request via
          ``pinned_snapshot()`` — direct slot access outside the
          three sanctioned methods can tear across a patch commit.
========  ==================================================================

(R9–R11, the interprocedural lock analyses, live in
:mod:`repro.analysis.locksets`.)

Rules R1/R3 scope themselves to classes that *own* a lock (they assign
``threading.Lock()``/``RLock()`` to an attribute), so single-threaded
value classes stay out of scope by construction.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import (
    FileContext,
    Rule,
    Violation,
    class_lock_attrs,
    is_self_attr,
    is_with_lock,
    iter_attr_accesses,
    iter_methods,
    iter_statement_lists,
    register,
)

#: Modules allowed to probe the DM R*-tree directly (R2).  Everything
#: else goes through the query processors / the engine, which clamp
#: the probe to ``e_cap``.
SANCTIONED_PROBE_MODULES = (
    "src/repro/core/query.py",
    "src/repro/core/engine.py",
    "src/repro/index/rstar.py",
)

#: Modules whose query-box construction must route LOD coordinates
#: through ``clamp_lod`` (the wrapper layer itself).
CLAMP_MODULES = (
    "src/repro/core/query.py",
    "src/repro/core/engine.py",
)

#: Receiver names that identify an R*-tree probe (``store.rtree``,
#: a local ``tree``/``rtree`` variable...).
_RTREE_NAMES = frozenset({"rtree", "tree", "rstar", "rstar_tree", "r_tree"})

#: The only modules allowed to call ``os.pread``/``os.pwrite`` (R7):
#: the pager (seals + verifies checksums), the WAL (its own record
#: framing), and the corruption injector (must damage bytes *around*
#: the pager, which would refuse to produce them).
SANCTIONED_RAW_IO_MODULES = (
    "src/repro/storage/pager.py",
    "src/repro/storage/wal.py",
    "src/repro/storage/integrity.py",
)


def _terminal_name(node: ast.AST) -> str:
    """The last identifier of a dotted/indexed expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return _terminal_name(node.value)
    return ""


@register
class LockDisciplineRule(Rule):
    """R1: attributes a lock protects are accessed only under it.

    For every class that owns a lock, the rule infers the *guarded*
    set — private attributes mutated while the lock is held (direct
    assignment, augmented assignment, subscript stores, or in-place
    mutator calls like ``.append``/``.clear``) — then flags any access
    to a guarded attribute outside the lock.  Two idioms stay legal:

    * ``__init__``/``__new__`` construct state before it is shared;
    * a *read* in a method that also touches the same attribute under
      the lock (the double-checked fast path R3 prescribes);
    * methods named ``*_locked`` declare caller-holds-the-lock.
    """

    id = "R1"
    title = "lock-protected attribute accessed outside its lock"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        lock_attrs = class_lock_attrs(cls)
        if not lock_attrs:
            return
        accesses = [
            access
            for method in iter_methods(cls)
            for access in iter_attr_accesses(method, lock_attrs)
        ]
        guarded = {
            access.attr
            for access in accesses
            if access.is_write
            and access.under_lock
            and access.method not in ("__init__", "__new__")
        }
        locked_reads_by_method = {
            (access.method, access.attr)
            for access in accesses
            if access.under_lock
        }
        for access in accesses:
            if access.attr not in guarded or access.under_lock:
                continue
            if access.method in ("__init__", "__new__"):
                continue
            if (
                not access.is_write
                and (access.method, access.attr) in locked_reads_by_method
            ):
                continue  # Double-checked fast path: re-read under lock.
            verb = "written" if access.is_write else "read"
            yield self.violation(
                ctx,
                access.node,
                f"{cls.name}.{access.attr} is guarded by a lock but "
                f"{verb} outside it in {access.method}(); wrap the "
                "access in the lock (or suffix the method _locked if "
                "callers hold it)",
            )


@register
class ClampedProbeRule(Rule):
    """R2: R*-tree probes only via sanctioned, e_cap-clamped wrappers.

    Part A: a ``<rtree>.search(...)`` call outside
    :data:`SANCTIONED_PROBE_MODULES` bypasses the ``min(lod, e_cap)``
    clamp and re-opens the e_cap blind spot (``lod > e_cap`` silently
    returned an empty mesh instead of the base mesh).

    Part B: inside the wrapper modules themselves, every query-box
    construction (``Box3.from_rect``) must sit in a function that
    routes its LOD coordinates through ``clamp_lod``.
    """

    id = "R2"
    title = "unsanctioned or unclamped R*-tree range query"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        sanctioned = ctx.path_endswith(*SANCTIONED_PROBE_MODULES)
        if not sanctioned:
            for node in ast.walk(ctx.tree):
                if self._is_rtree_search(node):
                    yield self.violation(
                        ctx,
                        node,
                        "direct R*-tree range query outside the "
                        "sanctioned wrappers (core/query.py, "
                        "core/engine.py); use uniform_query/"
                        "single_base_query or the QueryEngine so the "
                        "probe is clamped to e_cap",
                    )
            return
        if ctx.path_endswith(*CLAMP_MODULES):
            yield from self._check_clamp(ctx)

    @staticmethod
    def _is_rtree_search(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "search"
            and _terminal_name(node.func.value) in _RTREE_NAMES
        )

    def _check_clamp(self, ctx: FileContext) -> Iterator[Violation]:
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            if function.name == "clamp_lod":
                continue
            calls_clamp = any(
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == "clamp_lod"
                for node in ast.walk(function)
            )
            if calls_clamp:
                continue
            for node in ast.walk(function):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "from_rect"
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"{function.name}() builds a query box without "
                        "routing its LOD coordinates through "
                        "clamp_lod(); probes above e_cap return an "
                        "empty mesh instead of the base mesh",
                    )


@register
class LazyInitRule(Rule):
    """R3: lazy init of shared attributes uses double-checked locking.

    In a lock-owning class, ``if self._x is None: self._x = ...`` is a
    publication race unless (a) it already runs under the lock, or
    (b) the body takes the lock and re-checks before assigning —
    exactly the ``DMQueryResult._edges`` fix.
    """

    id = "R3"
    title = "unsynchronised lazy initialisation of a shared attribute"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        lock_attrs = class_lock_attrs(cls)
        if not lock_attrs:
            return
        for method in iter_methods(cls):
            if method.name in ("__init__", "__new__"):
                continue
            if method.name.endswith("_locked"):
                continue
            locked_ids: set[int] = set()
            for node in ast.walk(method):
                if isinstance(node, ast.With) and is_with_lock(
                    node, lock_attrs
                ):
                    locked_ids.update(id(child) for child in ast.walk(node))
            for node in ast.walk(method):
                attr = self._lazy_init_attr(node)
                if attr is None:
                    continue
                if id(node) in locked_ids:
                    continue
                if self._body_is_checked_lock(node, attr, lock_attrs):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"lazy init of {cls.name}.{attr} races: use "
                    "double-checked locking (check, take the lock, "
                    "re-check, then assign)",
                )

    @staticmethod
    def _lazy_init_attr(node: ast.AST) -> str | None:
        """``_x`` when node is ``if self._x is None:`` assigning it."""
        if not isinstance(node, ast.If):
            return None
        test = node.test
        if not (
            isinstance(test, ast.Compare)
            and is_self_attr(test.left)
            and test.left.attr.startswith("_")
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return None
        attr = test.left.attr
        for child in ast.walk(node):
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if is_self_attr(target) and target.attr == attr:
                        return attr
        return None

    @staticmethod
    def _body_is_checked_lock(
        node: ast.If, attr: str, lock_attrs: set[str]
    ) -> bool:
        """Body takes the lock and re-checks before assigning."""
        for stmt in node.body:
            if isinstance(stmt, ast.With) and is_with_lock(stmt, lock_attrs):
                recheck = any(
                    LazyInitRule._lazy_init_attr(inner) == attr
                    for inner in ast.walk(stmt)
                )
                if recheck:
                    return True
        return False


@register
class NoAssertRule(Rule):
    """R4: no load-bearing ``assert`` in production code.

    ``python -O`` strips assert statements, silently disabling the
    check.  Library invariants raise
    :class:`repro.errors.InvariantError` (or another typed error)
    instead; tests and benchmarks may assert freely.
    """

    id = "R4"
    title = "assert statement in src/ (stripped under python -O)"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_src:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    ctx,
                    node,
                    "assert is stripped under python -O; raise "
                    "InvariantError (repro.errors) so the invariant "
                    "survives in production",
                )


@register
class MetricRegistryRule(Rule):
    """R5: literal metric names must be declared in the registry.

    :class:`~repro.obs.metrics.MetricsRegistry` creates instruments on
    first use, so a typo'd name silently forks a series instead of
    failing.  Every string-literal name passed to ``.counter()`` /
    ``.gauge()`` / ``.histogram()`` / ``.timer()`` must appear in
    :data:`repro.obs.metrics.METRIC_NAMES`; f-string names must start
    with a prefix from :data:`repro.obs.metrics.METRIC_PREFIXES`.
    """

    id = "R5"
    title = "metric name not in the declared registry"

    _FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})

    def __init__(self) -> None:
        self._names: frozenset[str] | None = None
        self._prefixes: frozenset[str] | None = None

    def _registry(self) -> tuple[frozenset[str], frozenset[str]]:
        if self._names is None or self._prefixes is None:
            from repro.obs.metrics import METRIC_NAMES, METRIC_PREFIXES

            self._names = METRIC_NAMES
            self._prefixes = METRIC_PREFIXES
        return self._names, self._prefixes

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        names, prefixes = self._registry()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._FACTORIES
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
                if name in names or any(
                    name.startswith(prefix) for prefix in prefixes
                ):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"metric name '{name}' is not declared in "
                    "repro.obs.metrics.METRIC_NAMES; add it there (a "
                    "typo here would silently fork the series)",
                )
            elif isinstance(arg, ast.JoinedStr):
                head = ""
                if arg.values and isinstance(arg.values[0], ast.Constant):
                    head = str(arg.values[0].value)
                if head and any(
                    head.startswith(prefix) for prefix in prefixes
                ):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    "dynamically formatted metric name must start with "
                    "a prefix declared in "
                    "repro.obs.metrics.METRIC_PREFIXES",
                )


@register
class BareAcquireRule(Rule):
    """R6: ``Lock.acquire()`` needs a paired, exception-safe release.

    An acquire whose release can be skipped by an exception leaks the
    lock and deadlocks every later waiter.  Allowed forms: ``with
    lock:`` (preferred) or ``lock.acquire()`` immediately followed by
    ``try: ... finally: lock.release()``.
    """

    id = "R6"
    title = "bare Lock.acquire() without try/finally release"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        sanctioned: set[int] = set()
        for stmts in iter_statement_lists(ctx.tree):
            for index, stmt in enumerate(stmts):
                call = self._acquire_stmt(stmt)
                if call is None:
                    continue
                if index + 1 < len(stmts) and self._try_releases(
                    stmts[index + 1]
                ):
                    sanctioned.add(id(call))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and id(node) not in sanctioned
            ):
                yield self.violation(
                    ctx,
                    node,
                    "acquire() without a guaranteed release: use "
                    "'with lock:' or follow the acquire immediately "
                    "with try/finally lock.release()",
                )

    @staticmethod
    def _acquire_stmt(stmt: ast.stmt) -> ast.Call | None:
        value = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
        ):
            return value
        return None

    @staticmethod
    def _try_releases(stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Try) or not stmt.finalbody:
            return False
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
            for final in stmt.finalbody
            for node in ast.walk(final)
        )


@register
class RawPageIORule(Rule):
    """R7: raw page I/O stays inside the sanctioned storage modules.

    A bare ``os.pread``/``os.pwrite`` outside
    :data:`SANCTIONED_RAW_IO_MODULES` bypasses the pager — pages
    written that way carry no (or a stale) crc trailer and fail
    verification on the next read; pages read that way skip
    verification entirely.  Route page access through
    :class:`~repro.storage.pager.Pager` (or a :class:`Segment`), which
    seals on write and verifies on read.
    """

    id = "R7"
    title = "raw os.pread/os.pwrite outside the sanctioned storage modules"

    _RAW_IO = frozenset({"pread", "pwrite"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.path_endswith(*SANCTIONED_RAW_IO_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._RAW_IO
                and _terminal_name(node.func.value) == "os"
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"os.{node.func.attr} bypasses the pager's checksum "
                    "seal/verify; use Pager.read_page/write_page (or "
                    "Segment), or repro.storage.inject_corruption for "
                    "deliberate damage in drills",
                )


@register
class MetricRegistryGrammarRule(Rule):
    """R8: registry entries follow the ``family.metric`` grammar.

    R5 guarantees emitted names come *from* the registry; R8 guards
    the registry itself.  Every string literal added to
    ``METRIC_NAMES`` must be ``family.metric`` — a head declared in
    :data:`repro.obs.metrics.METRIC_FAMILIES` followed by one or more
    lowercase ``[a-z0-9_]`` segments — and every ``METRIC_PREFIXES``
    entry must additionally end with ``"."`` (it is a prefix for
    dynamically formatted names).  A registry addition with a misspelt
    family (``sol.`` for ``slo.``) would sail through R5 while dodging
    every dashboard that groups series by family.
    """

    id = "R8"
    title = "metric registry entry violates the family.metric grammar"

    _TARGETS = frozenset({"METRIC_NAMES", "METRIC_PREFIXES"})
    _SEGMENT = re.compile(r"[a-z][a-z0-9_]*\Z")

    def __init__(self) -> None:
        self._families: frozenset[str] | None = None

    def _known_families(self) -> frozenset[str]:
        if self._families is None:
            from repro.obs.metrics import METRIC_FAMILIES

            self._families = METRIC_FAMILIES
        return self._families

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            assignment = self._registry_assignment(node)
            if assignment is None:
                continue
            target, value = assignment
            for literal in ast.walk(value):
                if isinstance(literal, ast.Constant) and isinstance(
                    literal.value, str
                ):
                    problem = self._problem(
                        literal.value, prefix=target == "METRIC_PREFIXES"
                    )
                    if problem is not None:
                        yield self.violation(
                            ctx,
                            literal,
                            f"{target} entry '{literal.value}' {problem}",
                        )

    @classmethod
    def _registry_assignment(
        cls, node: ast.AST
    ) -> tuple[str, ast.expr] | None:
        """``(registry_name, assigned_value)`` when ``node`` assigns
        one of the metric registries, else None."""
        if isinstance(node, ast.AnnAssign):
            targets: list[ast.expr] = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        else:
            return None
        if value is None:
            return None
        for target in targets:
            if isinstance(target, ast.Name) and target.id in cls._TARGETS:
                return target.id, value
        return None

    def _problem(self, name: str, prefix: bool) -> str | None:
        """Why ``name`` breaks the grammar, or None if well-formed."""
        if prefix:
            if not name.endswith("."):
                return (
                    "must end with '.' (prefixes head dynamically "
                    "formatted names)"
                )
            segments = name[:-1].split(".")
        else:
            if name.endswith("."):
                return "must not end with '.' (that form is a prefix)"
            segments = name.split(".")
        if len(segments) < 2:
            return "must follow the family.metric grammar"
        if not all(self._SEGMENT.fullmatch(segment) for segment in segments):
            return (
                "has a segment outside the [a-z][a-z0-9_]* grammar"
            )
        families = self._known_families()
        if segments[0] not in families:
            return (
                f"uses family '{segments[0]}', which is not declared "
                "in repro.obs.metrics.METRIC_FAMILIES"
            )
        return None


@register
class EpochSnapshotRule(Rule):
    """R12: swapped store state only via the snapshot contract.

    A mutable store commits patches by *swapping* an engine's pinned
    ``(store, epoch)`` snapshot (``install_store``).  Any code path
    that dereferences the swap slot ``self._snap`` more than once per
    request can observe two different epochs in one answer — the
    classic torn read the epoch design exists to prevent.  The
    contract: methods pin the snapshot **once** through
    ``pinned_snapshot()`` (or receive it as an argument) and thread
    that frozen value through; the slot itself is touched only by
    ``__init__``, ``pinned_snapshot`` and ``install_store``.
    """

    id = "R12"
    title = (
        "epoch-pinned store slot accessed outside the snapshot contract"
    )

    _SLOT = "_snap"
    _ALLOWED = frozenset({"__init__", "pinned_snapshot", "install_store"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._owns_slot(node):
                continue
            for method in iter_methods(node):
                if method.name in self._ALLOWED:
                    continue
                for access in ast.walk(method):
                    if (
                        is_self_attr(access)
                        and access.attr == self._SLOT  # type: ignore[attr-defined]
                    ):
                        yield self.violation(
                            ctx,
                            access,
                            f"{node.name}.{method.name} touches "
                            f"self.{self._SLOT} directly; pin the "
                            "snapshot once via pinned_snapshot() and "
                            "thread it through (only __init__/"
                            "pinned_snapshot/install_store may access "
                            "the slot)",
                        )

    @classmethod
    def _owns_slot(cls, node: ast.ClassDef) -> bool:
        """True when the class assigns ``self._snap`` anywhere."""
        for method in iter_methods(node):
            for stmt in ast.walk(method):
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        is_self_attr(target)
                        and target.attr == cls._SLOT  # type: ignore[attr-defined]
                    ):
                        return True
        return False
