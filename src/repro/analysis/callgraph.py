"""Project-wide call graph with self-attribute type inference.

The intraprocedural rules in :mod:`repro.analysis.rules` stop at a
function boundary; the lockset rules (R9–R11) cannot.  This module
builds the structure they walk:

* a :class:`ProjectIndex` of every class and function in the linted
  files, reusing :func:`repro.analysis.engine.class_lock_attrs` so the
  notion of "lock attribute" is identical to R1/R3/R6's;
* per-class attribute types inferred from ``__init__`` assignments
  (``self.pager = pager`` with an annotated parameter, ``self.x =
  ClassName(...)`` construction, ``self.x: T = ...`` annotations —
  string annotations from ``from __future__ import annotations``
  included);
* call resolution: ``self.method(...)``, ``obj.method(...)`` through
  the inferred type of ``obj`` (locals, parameters, attribute chains,
  ``@property`` return annotations), ``ClassName(...)`` construction,
  and bare-name calls to module-level or imported project functions.

The inference is deliberately *trusting*: a local annotation
(``frame: _Frame``) is taken at face value, exactly as mypy would.
Unresolvable calls stay unresolved and the lockset analysis treats
them as non-blocking leaves — the dynamic lockwatch witness
(:mod:`repro.obs.lockwatch`) exists to catch what that optimism
misses.

Function qualnames are ``ClassName.method`` for methods and
``<path>::name`` for module-level functions; class names are assumed
project-unique (first definition wins).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.engine import (
    FileContext,
    class_lock_attrs,
    is_self_attr,
    iter_methods,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "TypeRef",
    "dotted_name",
    "parse_annotation",
]


@dataclass(frozen=True)
class TypeRef:
    """A resolved-enough type: a bare name plus generic arguments."""

    name: str
    args: tuple["TypeRef", ...] = ()


_NONE_NAMES = {"None", "NoneType"}
_WRAPPER_NAMES = {"Optional", "Final", "ClassVar", "Annotated"}


def parse_annotation(node: ast.AST | None) -> TypeRef | None:
    """Best-effort annotation → :class:`TypeRef`.

    Handles string annotations, ``Optional[X]`` / ``X | None`` /
    ``Union[X, None]`` (unwrapping to ``X`` when only one non-None arm
    remains), and dotted names (``threading.Lock`` → ``Lock``).
    Returns ``None`` for anything ambiguous.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
        return parse_annotation(node)
    if isinstance(node, ast.Name):
        if node.id in _NONE_NAMES:
            return None
        return TypeRef(node.id)
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    if isinstance(node, ast.Attribute):
        return TypeRef(node.attr)
    if isinstance(node, ast.Subscript):
        base = parse_annotation(node.value)
        if base is None:
            return None
        slice_node = node.slice
        arg_nodes = (
            list(slice_node.elts)
            if isinstance(slice_node, ast.Tuple)
            else [slice_node]
        )
        if base.name in _WRAPPER_NAMES:
            return parse_annotation(arg_nodes[0])
        if base.name == "Union":
            arms = [parse_annotation(arg) for arg in arg_nodes]
            real = [arm for arm in arms if arm is not None]
            return real[0] if len(real) == 1 else None
        args = tuple(
            arm
            for arm in (parse_annotation(arg) for arg in arg_nodes)
            if arm is not None
        )
        return TypeRef(base.name, args)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        arms = [parse_annotation(node.left), parse_annotation(node.right)]
        real = [arm for arm in arms if arm is not None]
        return real[0] if len(real) == 1 else None
    return None


def dotted_name(node: ast.AST) -> str:
    """Readable dotted form of a call target, for messages/matching."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted_name(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{dotted_name(node.func)}()"
    if isinstance(node, ast.Subscript):
        return f"{dotted_name(node.value)}[...]"
    return "<expr>"


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    name: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    calls: list["CallSite"] = field(default_factory=list)

    @property
    def is_locked_contract(self) -> bool:
        return self.name.endswith("_locked")


@dataclass
class ClassInfo:
    """One class definition plus its inferred attribute types."""

    name: str
    path: str
    node: ast.ClassDef
    bases: tuple[str, ...]
    lock_attrs: set[str]
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function."""

    node: ast.Call
    line: int
    col: int
    desc: str
    callee: str | None = None
    callee_class: str | None = None


def _module_key(path: str) -> str:
    """``src/repro/core/engine.py`` → ``repro.core.engine``."""
    trimmed = path
    if trimmed.endswith(".py"):
        trimmed = trimmed[: -len(".py")]
    parts = [part for part in trimmed.split("/") if part]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    return ".".join(parts)


class CallGraph:
    """Classes, functions, attribute types, and resolved call sites."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: path → {local function name → qualname}
        self._module_functions: dict[str, dict[str, str]] = {}
        #: dotted module → path, for resolving ``from x import f``.
        self._module_paths: dict[str, str] = {}
        #: path → {imported local name → (dotted module, original name)}
        self._imports: dict[str, dict[str, tuple[str, str]]] = {}
        #: callee qualname → list of (caller qualname, site).
        self.callers: dict[str, list[tuple[str, CallSite]]] = {}

        for ctx in files:
            self._index_file(ctx)
        for info in self.classes.values():
            self._infer_attr_types(info)
        for function in self.functions.values():
            self._resolve_calls(function)
        for function in self.functions.values():
            for site in function.calls:
                if site.callee is not None:
                    self.callers.setdefault(site.callee, []).append(
                        (function.qualname, site)
                    )

    # -- indexing ------------------------------------------------------------

    def _index_file(self, ctx: FileContext) -> None:
        self._module_paths.setdefault(_module_key(ctx.path), ctx.path)
        module_functions: dict[str, str] = {}
        imports: dict[str, tuple[str, str]] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(ctx.path, stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{ctx.path}::{stmt.name}"
                info = FunctionInfo(qualname, stmt.name, ctx.path, stmt)
                self.functions.setdefault(qualname, info)
                module_functions[stmt.name] = qualname
            elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    imports[local] = (stmt.module, alias.name)
        # Function-local imports count too (the DCL import pattern).
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.setdefault(local, (node.module, alias.name))
        self._module_functions[ctx.path] = module_functions
        self._imports[ctx.path] = imports

    def _index_class(self, path: str, node: ast.ClassDef) -> None:
        if node.name in self.classes:
            return  # First definition wins; class names assumed unique.
        bases = tuple(
            base.id if isinstance(base, ast.Name) else base.attr
            for base in node.bases
            if isinstance(base, (ast.Name, ast.Attribute))
        )
        info = ClassInfo(
            name=node.name,
            path=path,
            node=node,
            bases=bases,
            lock_attrs=class_lock_attrs(node),
        )
        for method in iter_methods(node):
            qualname = f"{node.name}.{method.name}"
            function = FunctionInfo(
                qualname, method.name, path, method, class_name=node.name
            )
            info.methods[method.name] = function
            self.functions.setdefault(qualname, function)
        self.classes[node.name] = info

    def _infer_attr_types(self, info: ClassInfo) -> None:
        inferred: dict[str, TypeRef] = {}
        annotated: dict[str, TypeRef] = {}
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ref = parse_annotation(stmt.annotation)
                if ref is not None:
                    annotated[stmt.target.id] = ref
        for function in info.methods.values():
            params = _param_annotations(function.node)
            for node in ast.walk(function.node):
                if isinstance(node, ast.AnnAssign) and is_self_attr(
                    node.target
                ):
                    ref = parse_annotation(node.annotation)
                    if ref is not None:
                        annotated.setdefault(node.target.attr, ref)
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and is_self_attr(node.targets[0])
                ):
                    attr = node.targets[0].attr
                    value = node.value
                    ref: TypeRef | None = None
                    if isinstance(value, ast.Name):
                        ref = params.get(value.id)
                    elif isinstance(value, ast.Call):
                        callee = value.func
                        name = (
                            callee.id
                            if isinstance(callee, ast.Name)
                            else callee.attr
                            if isinstance(callee, ast.Attribute)
                            else ""
                        )
                        if name in self.classes:
                            ref = TypeRef(name)
                    if ref is not None:
                        inferred.setdefault(attr, ref)
        info.attr_types = {**inferred, **annotated}

    # -- type lookup ---------------------------------------------------------

    def class_and_bases(self, name: str) -> list[ClassInfo]:
        """The class and its project-known bases, MRO-ish order."""
        seen: list[ClassInfo] = []
        queue = [name]
        visited: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in visited:
                continue
            visited.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            seen.append(info)
            queue.extend(info.bases)
        return seen

    def attr_type(self, class_name: str, attr: str) -> TypeRef | None:
        """Type of ``<class>.<attr>`` — attribute or @property return."""
        for info in self.class_and_bases(class_name):
            ref = info.attr_types.get(attr)
            if ref is not None:
                return ref
            method = info.methods.get(attr)
            if method is not None and _is_property(method.node):
                return parse_annotation(method.node.returns)
        return None

    def lock_owner(self, class_name: str, attr: str) -> str | None:
        """Name of the class (self or base) declaring lock ``attr``."""
        for info in self.class_and_bases(class_name):
            if attr in info.lock_attrs:
                return info.name
        return None

    def resolve_method(self, class_name: str, method: str) -> str | None:
        for info in self.class_and_bases(class_name):
            if method in info.methods:
                return info.methods[method].qualname
        return None

    def expr_type(
        self,
        expr: ast.AST,
        env: dict[str, TypeRef],
        cls: ClassInfo | None,
    ) -> TypeRef | None:
        """Best-effort static type of an expression."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            if is_self_attr(expr) and cls is not None:
                return self.attr_type(cls.name, expr.attr)
            base = self.expr_type(expr.value, env, cls)
            if base is not None:
                return self.attr_type(base.name, expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            base = self.expr_type(expr.value, env, cls)
            if base is None:
                return None
            if base.name in {"dict", "Dict", "OrderedDict", "defaultdict"}:
                return base.args[1] if len(base.args) == 2 else None
            if base.name in {"list", "List", "deque", "tuple", "Sequence"}:
                return base.args[0] if base.args else None
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in self.classes:
                return TypeRef(func.id)
            if isinstance(func, ast.Attribute):
                base = self.expr_type(func.value, env, cls)
                if base is not None:
                    qualname = self.resolve_method(base.name, func.attr)
                    if qualname is not None:
                        returns = self.functions[qualname].node.returns
                        return parse_annotation(returns)
            return None
        return None

    # -- call resolution -----------------------------------------------------

    def _local_env(self, function: FunctionInfo) -> dict[str, TypeRef]:
        cls = (
            self.classes.get(function.class_name)
            if function.class_name
            else None
        )
        env = _param_annotations(function.node)
        # Two passes so `a = self.pager` then `b = a.stats` both type.
        for _ in range(2):
            for node in ast.walk(function.node):
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    ref = parse_annotation(node.annotation)
                    if ref is not None:
                        env.setdefault(node.target.id, ref)
                elif (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    ref = self.expr_type(node.value, env, cls)
                    if ref is not None:
                        env.setdefault(node.targets[0].id, ref)
        return env

    def _resolve_calls(self, function: FunctionInfo) -> None:
        cls = (
            self.classes.get(function.class_name)
            if function.class_name
            else None
        )
        env = self._local_env(function)
        imports = self._imports.get(function.path, {})
        module_functions = self._module_functions.get(function.path, {})
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call):
                continue
            site = CallSite(
                node=node,
                line=node.lineno,
                col=node.col_offset,
                desc=dotted_name(node.func),
            )
            func = node.func
            if isinstance(func, ast.Name):
                self._resolve_name_call(
                    func.id, site, module_functions, imports
                )
            elif isinstance(func, ast.Attribute):
                owner: str | None = None
                if is_self_attr(func) and cls is not None:
                    owner = cls.name
                else:
                    base = self.expr_type(func.value, env, cls)
                    if base is not None:
                        owner = base.name
                if owner is not None:
                    qualname = self.resolve_method(owner, func.attr)
                    if qualname is not None:
                        site.callee = qualname
                        site.callee_class = self.functions[
                            qualname
                        ].class_name
            function.calls.append(site)

    def _resolve_name_call(
        self,
        name: str,
        site: CallSite,
        module_functions: dict[str, str],
        imports: dict[str, tuple[str, str]],
    ) -> None:
        if name in self.classes:
            qualname = self.resolve_method(name, "__init__")
            site.callee = qualname
            site.callee_class = name
            return
        if name in module_functions:
            site.callee = module_functions[name]
            return
        target = imports.get(name)
        if target is not None:
            module, original = target
            path = self._module_paths.get(module)
            if path is not None:
                if original in self.classes and (
                    self.classes[original].path == path
                ):
                    site.callee = self.resolve_method(original, "__init__")
                    site.callee_class = original
                    return
                site.callee = self._module_functions.get(path, {}).get(
                    original
                )


def _param_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, TypeRef]:
    params: dict[str, TypeRef] = {}
    all_args = [
        *node.args.posonlyargs,
        *node.args.args,
        *node.args.kwonlyargs,
    ]
    for arg in all_args:
        ref = parse_annotation(arg.annotation)
        if ref is not None:
            params[arg.arg] = ref
    return params


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = (
            decorator.id
            if isinstance(decorator, ast.Name)
            else decorator.attr
            if isinstance(decorator, ast.Attribute)
            else ""
        )
        if name in {"property", "cached_property"}:
            return True
    return False
