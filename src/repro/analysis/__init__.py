"""``reprolint`` — project-specific static analysis for the repro codebase.

Run it as ``python -m repro.analysis src tests benchmarks`` (or
``make lint-repro``).  See :mod:`repro.analysis.rules` for the rule
set and :mod:`repro.analysis.engine` for the rule engine, suppression
grammar, and how to add a rule.
"""

from __future__ import annotations

from repro.analysis import locksets as _locksets  # noqa: F401  (R9-R11)
from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.engine import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    check_paths,
    check_source,
    register,
)

__all__ = [
    "FileContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_rules",
    "check_paths",
    "check_source",
    "register",
]
