"""Interprocedural lockset analysis and rules R9/R10/R11.

Locks are named ``ClassName._attr`` (``BufferPool._latch``,
``DiskStats._lock``); a stripe list is one name (``BufferPool._stripes``)
since any stripe orders identically against every other lock.  For each
function the analysis records:

* **acquisitions** — ``with self._lock:`` (subscripts and locals bound
  to a lock attribute included) and bare ``.acquire()`` calls, each
  with the locks already held at that point;
* **call sites** — every call with the locks *lexically* held there
  (``*_locked`` functions additionally carry their owning class's
  locks as a caller-holds contract).

Held sets then propagate through the call graph to a fixed point:
**may** (union over call sites) feeds the lock-order graph and R9;
**must** (intersection) feeds R11.  Blocking-ness (``os.pread``,
``time.sleep``, subprocess, ``open``, function-level imports)
propagates bottom-up so R10 sees a stripe-held call reach
``Pager.read_page``'s ``io_latency`` sleep three frames down.

The rules:

* **R9** — lock-order inversion: any cycle in the global lock-order
  graph, reported once per strongly connected component with the
  witness call chain for *each* edge of the cycle.
* **R10** — blocking call under lock: a call site lexically inside a
  ``with <lock>:`` region whose callee (transitively) blocks.
  Reported only at lexical acquisition sites — the frame that chose
  to hold the lock — not at every propagated-held frame below it.
* **R11** — ``*_locked`` contract: every call to a ``*_locked``
  function must have a lock of the owning class in the must-held set.

The static graph is over-approximate (contract seeding, may-union);
:mod:`repro.obs.lockwatch` provides the dynamic under-approximation,
and CI checks dynamic ⊆ static.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.callgraph import CallGraph, CallSite, ClassInfo, TypeRef
from repro.analysis.engine import (
    ProjectContext,
    ProjectRule,
    Violation,
    is_self_attr,
    register,
)

__all__ = [
    "Edge",
    "LockOrderGraph",
    "LocksetAnalysis",
    "analyze",
    "analyze_paths",
]

#: Dotted call targets that block (I/O, sleeps, subprocesses).
BLOCKING_CALLS = frozenset(
    {
        "open",
        "time.sleep",
        "os.pread",
        "os.pwrite",
        "os.read",
        "os.write",
        "os.fsync",
        "os.fdatasync",
        "os.ftruncate",
        "os.open",
        "os.replace",
        "os.rename",
        "os.remove",
        "os.unlink",
        "os.listdir",
        "os.stat",
        "os.makedirs",
        "shutil.copy",
        "shutil.copy2",
        "shutil.copyfile",
        "shutil.copytree",
        "shutil.rmtree",
        "shutil.move",
    }
)

_BLOCKING_PREFIXES = ("subprocess.",)


def _is_blocking_desc(desc: str) -> bool:
    if desc in BLOCKING_CALLS:
        return True
    return desc.startswith(_BLOCKING_PREFIXES)


@dataclass
class Acquisition:
    """One lock acquisition inside a function."""

    lock: str
    line: int
    col: int
    held: frozenset[str]  # Locks lexically held when acquiring.


@dataclass
class LockedCall:
    """One call site annotated with the locks lexically held there."""

    site: CallSite
    held: frozenset[str]


@dataclass
class BlockingStmt:
    """A directly blocking statement (import under lock etc.)."""

    desc: str
    line: int
    col: int
    held: frozenset[str]


@dataclass
class FunctionLocks:
    """Per-function lock facts."""

    qualname: str
    path: str
    contract: frozenset[str]
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[LockedCall] = field(default_factory=list)
    blocking_stmts: list[BlockingStmt] = field(default_factory=list)


@dataclass(frozen=True)
class Edge:
    """``src`` held while ``dst`` acquired, with a witness."""

    src: str
    dst: str
    path: str
    line: int
    chain: tuple[str, ...]  # Call chain ending in the acquiring function.

    def witness(self) -> str:
        via = " -> ".join(self.chain)
        return f"{via} at {self.path}:{self.line}"


class LockOrderGraph:
    """The global lock-order digraph with one witness per edge."""

    def __init__(self) -> None:
        self.edges: dict[tuple[str, str], Edge] = {}

    def add(self, edge: Edge) -> None:
        self.edges.setdefault((edge.src, edge.dst), edge)

    @property
    def locks(self) -> list[str]:
        names = {src for src, _ in self.edges} | {
            dst for _, dst in self.edges
        }
        return sorted(names)

    def successors(self, lock: str) -> list[str]:
        return sorted(
            dst for (src, dst) in self.edges if src == lock
        )

    def cycles(self) -> list[list[str]]:
        """One shortest cycle per cyclic strongly connected component."""
        sccs = _tarjan_sccs(
            self.locks, {lock: self.successors(lock) for lock in self.locks}
        )
        cycles: list[list[str]] = []
        for component in sccs:
            members = set(component)
            cyclic = len(component) > 1 or (
                (component[0], component[0]) in self.edges
            )
            if not cyclic:
                continue
            start = min(component)
            cycle = _shortest_cycle(start, members, self.successors)
            if cycle:
                cycles.append(cycle)
        return cycles

    def to_json(self) -> dict[str, object]:
        return {
            "version": 1,
            "locks": self.locks,
            "edges": [
                {
                    "src": edge.src,
                    "dst": edge.dst,
                    "witness": edge.witness(),
                }
                for (_, _), edge in sorted(self.edges.items())
            ],
        }


def _tarjan_sccs(
    nodes: list[str], successors: dict[str, list[str]]
) -> list[list[str]]:
    """Tarjan's SCCs, iterative, deterministic order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = successors.get(node, [])
            for position in range(child_index, len(children)):
                child = children[position]
                if child not in index:
                    work[-1] = (node, position + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                result.append(sorted(component))
    return result


def _shortest_cycle(
    start: str,
    members: set[str],
    successors: Callable[[str], list[str]],
) -> list[str] | None:
    """BFS from ``start`` back to itself inside one SCC."""
    from collections import deque

    queue: "deque[list[str]]" = deque([[start]])
    while queue:
        path = queue.popleft()
        for nxt in successors(path[-1]):
            if nxt not in members:
                continue
            if nxt == start:
                return path
            if nxt in path:
                continue
            queue.append(path + [nxt])
    return None


class LocksetAnalysis:
    """The full interprocedural analysis over one project."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.locks: dict[str, FunctionLocks] = {}
        for qualname in sorted(graph.functions):
            self.locks[qualname] = self._collect(qualname)
        self.entry_may = self._propagate_may()
        self.entry_must = self._propagate_must()
        self.blocking: dict[str, tuple[str, tuple[str, ...]]] = (
            self._propagate_blocking()
        )
        self.order = self._build_order_graph()

    # -- per-function facts --------------------------------------------------

    def _contract(self, qualname: str) -> frozenset[str]:
        function = self.graph.functions[qualname]
        if not function.is_locked_contract or function.class_name is None:
            return frozenset()
        names: set[str] = set()
        for info in self.graph.class_and_bases(function.class_name):
            names.update(f"{info.name}.{attr}" for attr in info.lock_attrs)
        return frozenset(names)

    def _lock_locals(
        self, qualname: str, cls: ClassInfo | None
    ) -> dict[str, str]:
        """Locals bound to a lock attribute: ``stripe = self._stripes[i]``."""
        function = self.graph.functions[qualname]
        env = self.graph._local_env(function)
        bound: dict[str, str] = {}
        for node in ast.walk(function.node):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            lock = self._lock_of_expr(node.value, cls, env, {})
            if lock is not None:
                bound[node.targets[0].id] = lock
        return bound

    def _lock_of_expr(
        self,
        expr: ast.AST,
        cls: ClassInfo | None,
        env: "dict[str, TypeRef]",
        lock_locals: dict[str, str],
    ) -> str | None:
        """``ClassName._attr`` for a lock-valued expression, else None."""
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if isinstance(expr, ast.Name):
            return lock_locals.get(expr.id)
        if not isinstance(expr, ast.Attribute):
            return None
        if is_self_attr(expr):
            if cls is None:
                return None
            owner = self.graph.lock_owner(cls.name, expr.attr)
            return f"{owner}.{expr.attr}" if owner else None
        base = self.graph.expr_type(expr.value, env, cls)
        if base is None:
            return None
        owner = self.graph.lock_owner(base.name, expr.attr)
        return f"{owner}.{expr.attr}" if owner else None

    def _collect(self, qualname: str) -> FunctionLocks:
        function = self.graph.functions[qualname]
        cls = (
            self.graph.classes.get(function.class_name)
            if function.class_name
            else None
        )
        env = self.graph._local_env(function)
        lock_locals = self._lock_locals(qualname, cls)
        contract = self._contract(qualname)
        facts = FunctionLocks(
            qualname=qualname, path=function.path, contract=contract
        )
        sites_by_id = {id(site.node): site for site in function.calls}

        def lock_of(expr: ast.AST) -> str | None:
            return self._lock_of_expr(expr, cls, env, lock_locals)

        def scan(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                ),
            ):
                return  # Nested scopes run elsewhere/later.
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in node.items:
                    scan(item.context_expr, held)
                    if item.optional_vars is not None:
                        scan(item.optional_vars, held)
                    lock = lock_of(item.context_expr)
                    if lock is not None:
                        facts.acquisitions.append(
                            Acquisition(
                                lock=lock,
                                line=item.context_expr.lineno,
                                col=item.context_expr.col_offset,
                                held=frozenset(held) | set(acquired),
                            )
                        )
                        acquired.append(lock)
                inner = held + tuple(acquired)
                for stmt in node.body:
                    scan(stmt, inner)
                return
            if isinstance(node, ast.Call):
                site = sites_by_id.get(id(node))
                if site is not None:
                    facts.calls.append(
                        LockedCall(site=site, held=frozenset(held))
                    )
                # Bare ``lock.acquire()`` — an acquisition of unknown
                # extent: record the ordering fact, not the region.
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "acquire"
                ):
                    lock = lock_of(func.value)
                    if lock is not None:
                        facts.acquisitions.append(
                            Acquisition(
                                lock=lock,
                                line=node.lineno,
                                col=node.col_offset,
                                held=frozenset(held),
                            )
                        )
            if isinstance(node, (ast.Import, ast.ImportFrom)) and held:
                facts.blocking_stmts.append(
                    BlockingStmt(
                        desc="import (module load does file I/O under "
                        "the import lock)",
                        line=node.lineno,
                        col=node.col_offset,
                        held=frozenset(held),
                    )
                )
            for child in ast.iter_child_nodes(node):
                scan(child, held)

        for stmt in function.node.body:
            scan(stmt, ())
        return facts

    # -- propagation ---------------------------------------------------------

    def _call_edges(self) -> Iterator[tuple[str, str, LockedCall]]:
        for qualname, facts in self.locks.items():
            for call in facts.calls:
                if call.site.callee in self.graph.functions:
                    yield qualname, call.site.callee, call

    def _propagate_may(self) -> dict[str, frozenset[str]]:
        """Union of locks possibly held at entry; seeds contracts."""
        entry = {
            qualname: facts.contract
            for qualname, facts in self.locks.items()
        }
        self._provenance: dict[tuple[str, str], tuple[str, int]] = {}
        changed = True
        while changed:
            changed = False
            for caller, callee, call in self._call_edges():
                incoming = (
                    call.held
                    | entry[caller]
                    | self.locks[caller].contract
                )
                new = incoming - entry[callee]
                if new:
                    for lock in new:
                        self._provenance.setdefault(
                            (callee, lock), (caller, call.site.line)
                        )
                    entry[callee] = entry[callee] | new
                    changed = True
        return entry

    def _propagate_must(self) -> dict[str, frozenset[str]]:
        """Intersection of locks surely held at entry."""
        all_locks = frozenset(
            acquisition.lock
            for facts in self.locks.values()
            for acquisition in facts.acquisitions
        ) | frozenset(
            lock for facts in self.locks.values() for lock in facts.contract
        )
        callers: dict[str, list[tuple[str, LockedCall]]] = {}
        for caller, callee, call in self._call_edges():
            callers.setdefault(callee, []).append((caller, call))
        entry: dict[str, frozenset[str]] = {}
        for qualname, facts in self.locks.items():
            if qualname in callers:
                entry[qualname] = all_locks  # TOP, relaxed below.
            else:
                entry[qualname] = facts.contract
        changed = True
        while changed:
            changed = False
            for callee, sites in callers.items():
                met: frozenset[str] | None = None
                for caller, call in sites:
                    held = (
                        call.held
                        | entry[caller]
                        | self.locks[caller].contract
                    )
                    met = held if met is None else (met & held)
                met = (met or frozenset()) | self.locks[callee].contract
                if met != entry[callee]:
                    entry[callee] = met
                    changed = True
        return entry

    def _propagate_blocking(
        self,
    ) -> dict[str, tuple[str, tuple[str, ...]]]:
        """qualname → (sink description, call chain to it)."""
        blocking: dict[str, tuple[str, tuple[str, ...]]] = {}
        for qualname in sorted(self.locks):
            facts = self.locks[qualname]
            for call in facts.calls:
                if call.site.callee is None and _is_blocking_desc(
                    call.site.desc
                ):
                    blocking.setdefault(
                        qualname, (call.site.desc, (qualname,))
                    )
            for stmt in facts.blocking_stmts:
                blocking.setdefault(qualname, (stmt.desc, (qualname,)))
        changed = True
        while changed:
            changed = False
            for qualname in sorted(self.locks):
                if qualname in blocking:
                    continue
                for call in self.locks[qualname].calls:
                    callee = call.site.callee
                    if callee in blocking:
                        sink, chain = blocking[callee]
                        blocking[qualname] = (sink, (qualname,) + chain)
                        changed = True
                        break
        return blocking

    def _chain_to(self, qualname: str, lock: str) -> tuple[str, ...]:
        """Call chain explaining why ``lock`` is held entering ``qualname``."""
        chain = [qualname]
        seen = {qualname}
        current = qualname
        while True:
            origin = self._provenance.get((current, lock))
            if origin is None:
                break
            caller = origin[0]
            if caller in seen:
                break
            chain.append(caller)
            seen.add(caller)
            current = caller
        return tuple(reversed(chain))

    def _build_order_graph(self) -> LockOrderGraph:
        graph = LockOrderGraph()
        for qualname in sorted(self.locks):
            facts = self.locks[qualname]
            entry = self.entry_may[qualname]
            for acquisition in facts.acquisitions:
                lexical = acquisition.held | facts.contract
                for src in sorted(lexical):
                    if src == acquisition.lock:
                        continue
                    graph.add(
                        Edge(
                            src=src,
                            dst=acquisition.lock,
                            path=facts.path,
                            line=acquisition.line,
                            chain=(qualname,),
                        )
                    )
                for src in sorted(entry - lexical):
                    if src == acquisition.lock:
                        continue
                    graph.add(
                        Edge(
                            src=src,
                            dst=acquisition.lock,
                            path=facts.path,
                            line=acquisition.line,
                            chain=self._chain_to(qualname, src),
                        )
                    )
        return graph


def analyze(project: ProjectContext) -> LocksetAnalysis:
    """The memoised analysis for one lint run."""

    def build(ctx: ProjectContext) -> LocksetAnalysis:
        return LocksetAnalysis(CallGraph(ctx.files))

    return project.memo("locksets", build)  # type: ignore[return-value]


def analyze_paths(
    paths: "list[str]", root: str | None = None
) -> LocksetAnalysis:
    """Standalone entry: build the analysis straight from disk paths.

    Used by the CLI ``--lock-graph`` mode and the lockwatch
    cross-check script.
    """
    from pathlib import Path

    from repro.analysis.engine import (
        FileContext,
        iter_python_files,
    )

    anchor = Path(root) if root is not None else Path.cwd()
    contexts = []
    for file_path in iter_python_files(paths):
        try:
            virtual = (
                file_path.resolve()
                .relative_to(anchor.resolve())
                .as_posix()
            )
        except ValueError:
            virtual = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        contexts.append(FileContext(virtual, source, tree))
    return LocksetAnalysis(CallGraph(contexts))


# -- the rules ---------------------------------------------------------------


@register
class LockOrderInversionRule(ProjectRule):
    """R9 — a cycle in the global lock-order graph is a deadlock."""

    id = "R9"
    title = (
        "lock-order inversion: the global lock-order graph has a cycle"
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Violation]:
        analysis = analyze(project)
        for cycle in analysis.order.cycles():
            edges = [
                analysis.order.edges[
                    (cycle[i], cycle[(i + 1) % len(cycle)])
                ]
                for i in range(len(cycle))
            ]
            anchor = edges[0]
            loop = " -> ".join(cycle + [cycle[0]])
            witnesses = "; ".join(
                f"{edge.src} -> {edge.dst} via {edge.witness()}"
                for edge in edges
            )
            yield Violation(
                path=anchor.path,
                line=anchor.line,
                col=0,
                rule_id=self.id,
                message=(
                    f"lock-order inversion {loop}: acquiring these "
                    f"locks in inconsistent order can deadlock "
                    f"({witnesses})"
                ),
            )


@register
class BlockingUnderLockRule(ProjectRule):
    """R10 — don't hold a lock across blocking I/O or sleeps."""

    id = "R10"
    title = (
        "blocking call (I/O, sleep, subprocess, import) reached while "
        "holding a lock"
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Violation]:
        analysis = analyze(project)
        for qualname in sorted(analysis.locks):
            facts = analysis.locks[qualname]
            for call in facts.calls:
                if not call.held:
                    continue  # Lexically held only: see module docstring.
                held = ", ".join(sorted(call.held))
                callee = call.site.callee
                if callee is not None and callee in analysis.blocking:
                    sink, chain = analysis.blocking[callee]
                    via = " -> ".join((qualname,) + chain)
                    yield Violation(
                        path=facts.path,
                        line=call.site.line,
                        col=call.site.col,
                        rule_id=self.id,
                        message=(
                            f"call to {callee}() while holding {held} "
                            f"reaches blocking {sink} (via {via}); "
                            f"release the lock before blocking"
                        ),
                    )
                elif callee is None and _is_blocking_desc(call.site.desc):
                    yield Violation(
                        path=facts.path,
                        line=call.site.line,
                        col=call.site.col,
                        rule_id=self.id,
                        message=(
                            f"blocking {call.site.desc}() while holding "
                            f"{held}; release the lock first"
                        ),
                    )
            for stmt in facts.blocking_stmts:
                held = ", ".join(sorted(stmt.held))
                yield Violation(
                    path=facts.path,
                    line=stmt.line,
                    col=stmt.col,
                    rule_id=self.id,
                    message=(
                        f"{stmt.desc} while holding {held}; import "
                        f"before taking the lock"
                    ),
                )


@register
class LockedContractRule(ProjectRule):
    """R11 — ``*_locked`` callees need the owner's lock demonstrably held."""

    id = "R11"
    title = (
        "call to a *_locked function without the owning object's lock "
        "in the held set"
    )

    def check_project(
        self, project: ProjectContext
    ) -> Iterator[Violation]:
        analysis = analyze(project)
        graph = analysis.graph
        for qualname in sorted(analysis.locks):
            facts = analysis.locks[qualname]
            function = graph.functions[qualname]
            for call in facts.calls:
                owner = self._locked_owner(call.site, function.class_name)
                if owner is None:
                    continue
                owner_locks: set[str] = set()
                for info in graph.class_and_bases(owner):
                    owner_locks.update(
                        f"{info.name}.{attr}" for attr in info.lock_attrs
                    )
                if not owner_locks:
                    continue  # Owner has no locks; nothing to check.
                held = (
                    call.held
                    | facts.contract
                    | analysis.entry_must[qualname]
                )
                if held & owner_locks:
                    continue
                wanted = ", ".join(sorted(owner_locks))
                yield Violation(
                    path=facts.path,
                    line=call.site.line,
                    col=call.site.col,
                    rule_id=self.id,
                    message=(
                        f"{call.site.desc}() follows the *_locked "
                        f"contract of {owner} but no {wanted} is "
                        f"provably held at this call"
                    ),
                )

    @staticmethod
    def _locked_owner(
        site: CallSite, caller_class: str | None
    ) -> str | None:
        """Owning class of a ``*_locked`` callee, if determinable."""
        func = site.node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else ""
        )
        if not name.endswith("_locked"):
            return None
        if site.callee_class is not None:
            return site.callee_class
        if isinstance(func, ast.Attribute) and is_self_attr(func):
            return caller_class
        return None
