"""A binary interchange format for progressive meshes (``.pmz``).

Building a PM from millions of points is expensive; shipping one
between machines or sessions should not require re-simplification (or
Python pickles, which are neither stable nor safe across versions).
The ``.pmz`` format is a small, versioned, zlib-compressed container:

```
magic 'PMZ1' | u32 flags | u32 n_nodes | u32 n_leaves | u32 n_edges
zlib block:
    n_nodes   x  <i 5d 5i>   (id implicit; x y z error e e_high
                               parent child1 child2 wing1 wing2)
    n_edges   x  <2i>        base-mesh edges
    [flags & 1] n_nodes x connection list (varint-coded)
```

Normalised LOD values (and optionally the Direct Mesh connection
lists) are stored, so a loaded PM is immediately queryable and
buildable into stores without recomputation.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path

from repro.errors import DatasetError
from repro.mesh.progressive import PMNode, ProgressiveMesh
from repro.storage.varint import decode_id_list, encode_id_list

__all__ = ["save_pm", "load_pm"]

_MAGIC = b"PMZ1"
_HEADER = struct.Struct("<4sIIII")
_NODE = struct.Struct("<5d5i")
_EDGE = struct.Struct("<2i")

_FLAG_CONNECTIONS = 1


def save_pm(
    path: str | Path,
    pm: ProgressiveMesh,
    connections: dict[int, list[int]] | None = None,
) -> None:
    """Write a (normalised) progressive mesh to ``path``.

    Args:
        path: output file (conventionally ``*.pmz``).
        pm: the mesh; must be normalised so LOD intervals round-trip.
        connections: optional Direct Mesh connection lists to embed.
    """
    if not pm.is_normalized:
        raise DatasetError("save_pm requires a normalised progressive mesh")
    flags = _FLAG_CONNECTIONS if connections is not None else 0
    body = bytearray()
    for node in pm.nodes:
        body += _NODE.pack(
            node.x,
            node.y,
            node.z,
            node.error,
            node.e,
            node.parent,
            node.child1,
            node.child2,
            node.wing1,
            node.wing2,
        )
    edges = sorted(pm.base_edges)
    for a, b in edges:
        body += _EDGE.pack(a, b)
    if connections is not None:
        for node in pm.nodes:
            body += encode_id_list(connections.get(node.id, []))
    compressed = zlib.compress(bytes(body), level=6)
    with open(path, "wb") as f:
        f.write(
            _HEADER.pack(
                _MAGIC, flags, len(pm.nodes), pm.n_leaves, len(edges)
            )
        )
        f.write(compressed)


def load_pm(
    path: str | Path,
) -> tuple[ProgressiveMesh, dict[int, list[int]] | None]:
    """Read a ``.pmz`` file; returns ``(pm, connections_or_None)``.

    The returned mesh is normalised (LOD values and intervals are
    restored from the file, then re-derived footprints).
    """
    with open(path, "rb") as f:
        header = f.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise DatasetError(f"{path}: truncated header")
        magic, flags, n_nodes, n_leaves, n_edges = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise DatasetError(f"{path}: not a PMZ file")
        try:
            body = zlib.decompress(f.read())
        except zlib.error as exc:
            raise DatasetError(f"{path}: corrupt body ({exc})") from exc

    expected_min = n_nodes * _NODE.size + n_edges * _EDGE.size
    if len(body) < expected_min:
        raise DatasetError(
            f"{path}: body holds {len(body)} bytes, "
            f"needs at least {expected_min}"
        )
    nodes: list[PMNode] = []
    offset = 0
    for node_id in range(n_nodes):
        x, y, z, error, e, parent, c1, c2, w1, w2 = _NODE.unpack_from(
            body, offset
        )
        offset += _NODE.size
        node = PMNode(
            node_id, x, y, z, error,
            parent=parent, child1=c1, child2=c2, wing1=w1, wing2=w2,
        )
        node.e = e
        nodes.append(node)
    edges: set[tuple[int, int]] = set()
    for _ in range(n_edges):
        a, b = _EDGE.unpack_from(body, offset)
        offset += _EDGE.size
        edges.add((a, b))

    connections: dict[int, list[int]] | None = None
    if flags & _FLAG_CONNECTIONS:
        connections = {}
        for node_id in range(n_nodes):
            ids, offset = decode_id_list(body, offset)
            connections[node_id] = ids

    pm = ProgressiveMesh(nodes, n_leaves, edges)
    _restore_normalisation(pm)
    pm.validate()
    return pm, connections


def _restore_normalisation(pm: ProgressiveMesh) -> None:
    """Rebuild interval tops and footprints from the stored ``e``."""
    from repro.mesh.progressive import LOD_INFINITY

    for node in pm.nodes:
        if node.parent == -1:
            node.e_high = LOD_INFINITY
        else:
            node.e_high = pm.node(node.parent).e
    pm._compute_footprints()
    pm._normalized = True
