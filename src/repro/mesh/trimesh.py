"""Static indexed triangle meshes ("TINs") with adjacency queries.

A :class:`TriMesh` is the full-resolution terrain approximation from
which the progressive mesh is built (paper Section 2).  Vertices carry
3D coordinates ``(x, y, z)``; triangles are index triples wound
counter-clockwise when projected to the ``(x, y)`` plane.

The class is immutable-by-convention: simplification does not mutate a
``TriMesh`` but copies its connectivity into the dynamic structure of
:mod:`repro.mesh.simplify`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.errors import MeshError
from repro.geometry.predicates import orient2d
from repro.geometry.primitives import Point3, Rect
from repro.geometry.triangulation import delaunay

__all__ = ["TriMesh"]


class TriMesh:
    """An indexed triangle mesh over terrain samples.

    Attributes:
        vertices: list of ``(x, y, z)`` tuples.
        triangles: list of ``(a, b, c)`` vertex-index triples, CCW in
            the ``(x, y)`` projection.
    """

    def __init__(
        self,
        vertices: Sequence[tuple[float, float, float]],
        triangles: Sequence[tuple[int, int, int]],
        validate: bool = True,
    ) -> None:
        self.vertices: list[tuple[float, float, float]] = [
            (float(x), float(y), float(z)) for x, y, z in vertices
        ]
        self.triangles: list[tuple[int, int, int]] = [
            (int(a), int(b), int(c)) for a, b, c in triangles
        ]
        if validate:
            self._validate()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_points(
        cls, points: Sequence[tuple[float, float, float]]
    ) -> "TriMesh":
        """Triangulate scattered 3D terrain samples by 2D Delaunay.

        Duplicate ``(x, y)`` locations are merged; the first sample's
        elevation wins.
        """
        tri = delaunay([(p[0], p[1]) for p in points])
        verts: list[tuple[float, float, float]] = [
            (0.0, 0.0, 0.0)
        ] * len(tri.points)
        seen = [False] * len(tri.points)
        for orig_idx, new_idx in enumerate(tri.index_map):
            if not seen[new_idx]:
                x, y, z = points[orig_idx]
                verts[new_idx] = (float(x), float(y), float(z))
                seen[new_idx] = True
        return cls(verts, tri.triangles, validate=False)

    @classmethod
    def from_grid(
        cls, heights: Sequence[Sequence[float]], cell_size: float = 1.0
    ) -> "TriMesh":
        """Triangulate a regular elevation grid directly.

        Diagonals alternate per cell (a "union jack" style pattern),
        which avoids directional artefacts in the simplification.
        ``heights[row][col]`` maps to ``y = row * cell_size``,
        ``x = col * cell_size``.
        """
        rows = len(heights)
        if rows < 2 or len(heights[0]) < 2:
            raise MeshError("grid must be at least 2x2")
        cols = len(heights[0])
        verts = [
            (c * cell_size, r * cell_size, float(heights[r][c]))
            for r in range(rows)
            for c in range(cols)
        ]
        tris: list[tuple[int, int, int]] = []
        for r in range(rows - 1):
            for c in range(cols - 1):
                v00 = r * cols + c
                v01 = v00 + 1
                v10 = v00 + cols
                v11 = v10 + 1
                if (r + c) % 2 == 0:
                    tris.append((v00, v01, v11))
                    tris.append((v00, v11, v10))
                else:
                    tris.append((v00, v01, v10))
                    tris.append((v01, v11, v10))
        return cls(verts, tris, validate=False)

    # -- basic properties --------------------------------------------------

    def __len__(self) -> int:
        return len(self.vertices)

    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return len(self.vertices)

    @property
    def n_triangles(self) -> int:
        """Number of triangles."""
        return len(self.triangles)

    def vertex_point(self, idx: int) -> Point3:
        """The vertex ``idx`` as a :class:`Point3`."""
        x, y, z = self.vertices[idx]
        return Point3(x, y, z)

    def bounds(self) -> Rect:
        """The mesh footprint in the ``(x, y)`` plane."""
        if not self.vertices:
            raise MeshError("empty mesh has no bounds")
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def elevation_range(self) -> tuple[float, float]:
        """``(min z, max z)`` over all vertices."""
        zs = [v[2] for v in self.vertices]
        return (min(zs), max(zs))

    # -- adjacency ---------------------------------------------------------

    def edges(self) -> set[tuple[int, int]]:
        """Undirected edges as ``(lo, hi)`` pairs."""
        result: set[tuple[int, int]] = set()
        for a, b, c in self.triangles:
            result.add((a, b) if a < b else (b, a))
            result.add((b, c) if b < c else (c, b))
            result.add((a, c) if a < c else (c, a))
        return result

    def vertex_neighbors(self) -> list[set[int]]:
        """For each vertex, the set of vertices sharing an edge."""
        neighbors: list[set[int]] = [set() for _ in range(len(self.vertices))]
        for a, b, c in self.triangles:
            neighbors[a].add(b)
            neighbors[a].add(c)
            neighbors[b].add(a)
            neighbors[b].add(c)
            neighbors[c].add(a)
            neighbors[c].add(b)
        return neighbors

    def edge_triangles(self) -> dict[tuple[int, int], list[int]]:
        """Map each undirected edge to the triangle indices sharing it."""
        result: dict[tuple[int, int], list[int]] = defaultdict(list)
        for tidx, (a, b, c) in enumerate(self.triangles):
            result[(a, b) if a < b else (b, a)].append(tidx)
            result[(b, c) if b < c else (c, b)].append(tidx)
            result[(a, c) if a < c else (c, a)].append(tidx)
        return dict(result)

    def boundary_vertices(self) -> set[int]:
        """Vertices on the mesh boundary (incident to a boundary edge)."""
        result: set[int] = set()
        for (a, b), tris in self.edge_triangles().items():
            if len(tris) == 1:
                result.add(a)
                result.add(b)
        return result

    def vertex_triangles(self) -> list[list[int]]:
        """For each vertex, the indices of its incident triangles."""
        result: list[list[int]] = [[] for _ in range(len(self.vertices))]
        for tidx, (a, b, c) in enumerate(self.triangles):
            result[a].append(tidx)
            result[b].append(tidx)
            result[c].append(tidx)
        return result

    # -- sampling ------------------------------------------------------------

    def elevation_at(self, x: float, y: float) -> float | None:
        """Barycentric elevation at ``(x, y)``, or ``None`` if outside.

        Linear scan — intended for tests and small meshes, not as a
        production query path.
        """
        for a, b, c in self.triangles:
            ax, ay, az = self.vertices[a]
            bx, by, bz = self.vertices[b]
            cx, cy, cz = self.vertices[c]
            det = (by - cy) * (ax - cx) + (cx - bx) * (ay - cy)
            if det == 0:
                continue
            l1 = ((by - cy) * (x - cx) + (cx - bx) * (y - cy)) / det
            l2 = ((cy - ay) * (x - cx) + (ax - cx) * (y - cy)) / det
            l3 = 1.0 - l1 - l2
            eps = -1e-9
            if l1 >= eps and l2 >= eps and l3 >= eps:
                return l1 * az + l2 * bz + l3 * cz
        return None

    # -- validation ------------------------------------------------------------

    def _validate(self) -> None:
        n = len(self.vertices)
        for a, b, c in self.triangles:
            if not (0 <= a < n and 0 <= b < n and 0 <= c < n):
                raise MeshError(f"triangle ({a}, {b}, {c}) out of range")
            if a == b or b == c or a == c:
                raise MeshError(f"degenerate triangle ({a}, {b}, {c})")

    def validate_topology(self) -> None:
        """Check manifold-ness: every edge borders at most two triangles
        and triangle winding is CCW in the (x, y) projection.

        Raises :class:`MeshError` on violation.
        """
        self._validate()
        for (a, b), tris in self.edge_triangles().items():
            if len(tris) > 2:
                raise MeshError(
                    f"edge ({a}, {b}) borders {len(tris)} triangles"
                )
        for a, b, c in self.triangles:
            ax, ay, _ = self.vertices[a]
            bx, by, _ = self.vertices[b]
            cx, cy, _ = self.vertices[c]
            if orient2d(ax, ay, bx, by, cx, cy) < 0:
                raise MeshError(
                    f"triangle ({a}, {b}, {c}) is clockwise in (x, y)"
                )
