"""Triangular mesh and multiresolution-mesh (MTM) substrate.

Public surface:

* :class:`~repro.mesh.trimesh.TriMesh` — static full-resolution TIN;
* :func:`~repro.mesh.simplify.simplify_to_pm` — bottom-up PM
  construction by quadric-ordered edge collapse;
* :class:`~repro.mesh.progressive.ProgressiveMesh` /
  :class:`~repro.mesh.progressive.PMNode` — the paper's MTM tree with
  LOD normalisation and intervals;
* :mod:`repro.mesh.selective` — in-memory reference query semantics;
* :class:`~repro.mesh.quadric.Quadric` — Garland-Heckbert error
  quadrics.
"""

from repro.mesh.pmfile import load_pm, save_pm
from repro.mesh.progressive import LOD_INFINITY, NULL_ID, PMNode, ProgressiveMesh
from repro.mesh.quadric import Quadric, triangle_plane_quadric
from repro.mesh.selective import (
    selective_subtree,
    uniform_query_ref,
    viewdep_query_ref,
)
from repro.mesh.simplify import SimplifyConfig, simplify_to_pm
from repro.mesh.trimesh import TriMesh
from repro.mesh.vsplit import DynamicMesh

__all__ = [
    "DynamicMesh",
    "LOD_INFINITY",
    "NULL_ID",
    "PMNode",
    "ProgressiveMesh",
    "Quadric",
    "SimplifyConfig",
    "TriMesh",
    "load_pm",
    "save_pm",
    "selective_subtree",
    "simplify_to_pm",
    "triangle_plane_quadric",
    "uniform_query_ref",
    "viewdep_query_ref",
]
