"""Bottom-up PM construction by greedy edge collapse.

Implements paper Section 2's construction: repeatedly pick the edge
whose collapse causes minimum approximation error, replace its two
endpoints by a new parent point, and record the parent/child/wing
structure, until no further collapse is possible.  Collapses are
ordered by quadric error (the paper pre-processes its datasets with
Quadric Error Metrics [7]); the recorded per-node error can be either
the quadric cost or the vertical-distance measure the paper also
mentions.

The simplifier maintains a *valid planar triangulation at every step*:
a collapse is only applied when

* the link condition holds (the common neighbours of the edge's
  endpoints are exactly the wing vertices), which preserves
  manifoldness; and
* no surviving triangle flips its winding in the ``(x, y)``
  projection, which preserves the planar-triangulation property that
  the Direct Mesh connectivity encoding relies on.

Edges that fail validity are retried later with a small cost penalty.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.errors import SimplificationError
from repro.geometry.predicates import orient2d, point_in_triangle
from repro.mesh.progressive import NULL_ID, PMNode, ProgressiveMesh
from repro.mesh.quadric import Quadric, triangle_plane_quadric
from repro.mesh.trimesh import TriMesh

__all__ = ["simplify_to_pm", "SimplifyConfig"]

#: Cost multiplier applied when an invalid edge is re-queued.
_RETRY_PENALTY = 1.25

#: Maximum times a single edge is re-queued before being abandoned.
_MAX_RETRIES = 16


@dataclass(frozen=True)
class SimplifyConfig:
    """Tuning knobs for PM construction.

    Attributes:
        error_measure: ``"qem"`` records ``sqrt`` of the quadric cost
            as the node error; ``"vertical"`` records the maximum
            vertical distance from the removed points to the new
            surface (the measure paper Section 2 describes).
        placement: ``"optimal"`` solves the quadric for the new point,
            falling back to midpoint/endpoints; ``"midpoint"`` always
            uses the edge midpoint.
        area_weighted: area-weight the triangle quadrics.
    """

    error_measure: str = "qem"
    placement: str = "optimal"
    area_weighted: bool = True

    def __post_init__(self) -> None:
        if self.error_measure not in ("qem", "vertical"):
            raise ValueError(f"unknown error measure {self.error_measure!r}")
        if self.placement not in ("optimal", "midpoint"):
            raise ValueError(f"unknown placement {self.placement!r}")


def simplify_to_pm(
    mesh: TriMesh, config: SimplifyConfig | None = None
) -> ProgressiveMesh:
    """Build a progressive mesh by collapsing ``mesh`` to (near) a point.

    Args:
        mesh: the full-resolution TIN.
        config: optional :class:`SimplifyConfig`.

    Returns:
        A :class:`ProgressiveMesh` whose leaves are ``mesh``'s vertices
        in order.  ``normalize_lod()`` has *not* been called yet.
    """
    if mesh.n_triangles == 0:
        raise SimplificationError("cannot simplify a mesh with no triangles")
    builder = _PMBuilder(mesh, config or SimplifyConfig())
    return builder.run()


class _PMBuilder:
    """Mutable state for one simplification run."""

    def __init__(self, mesh: TriMesh, config: SimplifyConfig) -> None:
        self._config = config
        n = mesh.n_vertices
        self._pos: dict[int, tuple[float, float, float]] = {
            i: mesh.vertices[i] for i in range(n)
        }
        # Live triangles and per-vertex incidence.
        self._tris: dict[int, tuple[int, int, int]] = {
            t: tri for t, tri in enumerate(mesh.triangles)
        }
        self._next_tid = len(mesh.triangles)
        self._vert_tris: dict[int, set[int]] = {i: set() for i in range(n)}
        for tid, (a, b, c) in self._tris.items():
            self._vert_tris[a].add(tid)
            self._vert_tris[b].add(tid)
            self._vert_tris[c].add(tid)
        # Live adjacency, maintained independently of triangles so the
        # final triangle-free collapses can still proceed.
        self._neighbors: dict[int, set[int]] = {i: set() for i in range(n)}
        for a, b in mesh.edges():
            self._neighbors[a].add(b)
            self._neighbors[b].add(a)
        # Accumulated quadrics.
        self._quadrics: dict[int, Quadric] = {i: Quadric() for i in range(n)}
        for a, b, c in mesh.triangles:
            q = triangle_plane_quadric(
                mesh.vertices[a],
                mesh.vertices[b],
                mesh.vertices[c],
                area_weighted=config.area_weighted,
            )
            if q is None:
                continue
            self._quadrics[a] += q
            self._quadrics[b] += q
            self._quadrics[c] += q
        # PM bookkeeping.
        self._nodes: list[PMNode] = [
            PMNode(i, *mesh.vertices[i], error=0.0) for i in range(n)
        ]
        self._n_leaves = n
        self._base_edges = mesh.edges()
        # Priority queue of candidate collapses.
        self._heap: list[tuple[float, int, int, int]] = []
        self._push_counter = 0
        self._retries: dict[tuple[int, int], int] = {}
        for a, b in self._base_edges:
            self._push_edge(a, b)

    # -- queue ------------------------------------------------------------

    def _push_edge(self, u: int, v: int, cost: float | None = None) -> None:
        if cost is None:
            cost = self._collapse_cost(u, v)[0]
        self._push_counter += 1
        heapq.heappush(self._heap, (cost, self._push_counter, u, v))

    def _collapse_cost(
        self, u: int, v: int
    ) -> tuple[float, tuple[float, float, float]]:
        """Quadric cost and placement for collapsing edge ``(u, v)``."""
        q = self._quadrics[u] + self._quadrics[v]
        pu = self._pos[u]
        pv = self._pos[v]
        midpoint = (
            (pu[0] + pv[0]) / 2,
            (pu[1] + pv[1]) / 2,
            (pu[2] + pv[2]) / 2,
        )
        if self._config.placement == "midpoint":
            return q.error(*midpoint), midpoint
        candidates: list[tuple[float, float, float]] = []
        opt = q.optimal_point()
        if opt is not None:
            candidates.append(opt)
        candidates.append(midpoint)
        candidates.append(pu)
        candidates.append(pv)
        best = min(candidates, key=lambda p: q.error(*p))
        return q.error(*best), best

    # -- main loop -----------------------------------------------------------

    def run(self) -> ProgressiveMesh:
        alive = len(self._pos)
        while self._heap and alive > 1:
            cost, _, u, v = heapq.heappop(self._heap)
            if u not in self._pos or v not in self._pos:
                continue
            if v not in self._neighbors[u]:
                continue
            wings = self._edge_wings(u, v)
            if wings is None or not self._placement_valid(u, v, wings):
                self._retry(u, v, cost)
                continue
            self._collapse(u, v, wings)
            alive -= 1
        return ProgressiveMesh(self._nodes, self._n_leaves, self._base_edges)

    def _retry(self, u: int, v: int, cost: float) -> None:
        key = (u, v) if u < v else (v, u)
        count = self._retries.get(key, 0)
        if count >= _MAX_RETRIES:
            return
        self._retries[key] = count + 1
        self._push_edge(u, v, cost * _RETRY_PENALTY + 1e-12)

    # -- validity -----------------------------------------------------------------

    def _edge_wings(self, u: int, v: int) -> tuple[int, ...] | None:
        """Wing vertices of edge ``(u, v)``, or ``None`` if the collapse
        would violate the link condition."""
        shared_tris = self._vert_tris[u] & self._vert_tris[v]
        wings = []
        for tid in shared_tris:
            a, b, c = self._tris[tid]
            wing = a + b + c - u - v
            wings.append(wing)
        if len(wings) > 2:
            return None  # Non-manifold edge.
        common_neighbors = self._neighbors[u] & self._neighbors[v]
        if common_neighbors != set(wings):
            return None  # Link condition fails.
        return tuple(wings)

    def _placement_valid(
        self, u: int, v: int, wings: tuple[int, ...]
    ) -> bool:
        """True if the cached placement keeps all surviving triangles CCW."""
        _, pos = self._collapse_cost(u, v)
        self._pending_pos = pos
        shared = self._vert_tris[u] & self._vert_tris[v]
        for vid in (u, v):
            for tid in self._vert_tris[vid]:
                if tid in shared:
                    continue
                a, b, c = self._tris[tid]
                pa = pos if a in (u, v) else self._pos[a]
                pb = pos if b in (u, v) else self._pos[b]
                pc = pos if c in (u, v) else self._pos[c]
                if orient2d(pa[0], pa[1], pb[0], pb[1], pc[0], pc[1]) <= 0:
                    return False
        return True

    # -- collapse ----------------------------------------------------------------------

    def _collapse(self, u: int, v: int, wings: tuple[int, ...]) -> None:
        pos = self._pending_pos
        new_id = len(self._nodes)
        quadric = self._quadrics[u] + self._quadrics[v]

        # Rewire triangles.
        shared = self._vert_tris[u] & self._vert_tris[v]
        for tid in shared:
            a, b, c = self._tris.pop(tid)
            for vid in (a, b, c):
                self._vert_tris[vid].discard(tid)
        new_tris: list[int] = []
        for vid in (u, v):
            for tid in list(self._vert_tris[vid]):
                a, b, c = self._tris.pop(tid)
                self._vert_tris[a].discard(tid)
                self._vert_tris[b].discard(tid)
                self._vert_tris[c].discard(tid)
                na = new_id if a in (u, v) else a
                nb = new_id if b in (u, v) else b
                nc = new_id if c in (u, v) else c
                ntid = self._next_tid
                self._next_tid += 1
                self._tris[ntid] = (na, nb, nc)
                new_tris.append(ntid)
        self._vert_tris[new_id] = set()
        for ntid in new_tris:
            for vid in self._tris[ntid]:
                self._vert_tris.setdefault(vid, set()).add(ntid)

        # Rewire adjacency.
        new_neighbors = (self._neighbors[u] | self._neighbors[v]) - {u, v}
        for n in self._neighbors.pop(u):
            self._neighbors[n].discard(u)
        for n in self._neighbors.pop(v):
            self._neighbors[n].discard(v)
        self._neighbors[new_id] = new_neighbors
        for n in new_neighbors:
            self._neighbors[n].add(new_id)

        # Error measurement (before discarding the old positions).
        error = self._measure_error(u, v, new_id, pos)

        # PM node bookkeeping.
        node = PMNode(
            new_id,
            pos[0],
            pos[1],
            pos[2],
            error=error,
            child1=u,
            child2=v,
            wing1=wings[0] if len(wings) > 0 else NULL_ID,
            wing2=wings[1] if len(wings) > 1 else NULL_ID,
        )
        self._nodes.append(node)
        self._nodes[u].parent = new_id
        self._nodes[v].parent = new_id

        # State swap.
        del self._pos[u]
        del self._pos[v]
        self._pos[new_id] = pos
        del self._quadrics[u]
        del self._quadrics[v]
        self._quadrics[new_id] = quadric
        del self._vert_tris[u]
        del self._vert_tris[v]

        # Re-queue edges incident to the new vertex.
        for n in new_neighbors:
            self._push_edge(new_id, n)

    def _measure_error(
        self,
        u: int,
        v: int,
        new_id: int,
        pos: tuple[float, float, float],
    ) -> float:
        if self._config.error_measure == "qem":
            quadric = self._quadrics[u] + self._quadrics[v]
            return math.sqrt(max(0.0, quadric.error(*pos)))
        # Vertical distance: |z - surface(x, y)| for each removed point,
        # evaluated on the new fan around ``pos``.
        worst = 0.0
        for vid in (u, v):
            px, py, pz = self._pos[vid]
            worst = max(worst, self._vertical_distance(px, py, pz, new_id, pos))
        return worst

    def _vertical_distance(
        self,
        px: float,
        py: float,
        pz: float,
        new_id: int,
        pos: tuple[float, float, float],
    ) -> float:
        """Vertical distance from ``(px, py, pz)`` to the fan around
        the (not yet registered) new vertex ``new_id`` at ``pos``."""
        for tid in self._vert_tris.get(new_id, ()):
            a, b, c = self._tris[tid]
            pa = pos if a == new_id else self._pos[a]
            pb = pos if b == new_id else self._pos[b]
            pc = pos if c == new_id else self._pos[c]
            if not point_in_triangle(
                px, py, pa[0], pa[1], pb[0], pb[1], pc[0], pc[1]
            ):
                continue
            det = (pb[1] - pc[1]) * (pa[0] - pc[0]) + (pc[0] - pb[0]) * (
                pa[1] - pc[1]
            )
            if det == 0:
                continue
            l1 = (
                (pb[1] - pc[1]) * (px - pc[0]) + (pc[0] - pb[0]) * (py - pc[1])
            ) / det
            l2 = (
                (pc[1] - pa[1]) * (px - pc[0]) + (pa[0] - pc[0]) * (py - pc[1])
            ) / det
            l3 = 1.0 - l1 - l2
            surface_z = l1 * pa[2] + l2 * pb[2] + l3 * pc[2]
            return abs(pz - surface_z)
        return abs(pz - pos[2])
