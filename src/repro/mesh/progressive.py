"""The progressive mesh (PM) binary-tree MTM structure.

This is the multiresolution triangular mesh of paper Section 2: a
binary forest built bottom-up by edge collapses.  Leaves are the
original terrain points; each internal node is the new point created by
collapsing its two children, annotated with

``(ID, x, y, z, e, parent, child1, child2, wing1, wing2)``

exactly as the paper lists, plus the *footprint* MBR of its descendant
points which the paper notes every internal node must record so it can
be retrieved with any of its descendants.

The module also implements the paper's **LOD normalisation**
(Section 4)::

    m.e = 0                                        if m is a leaf
    m.e = max(m.e, m.child1.e, m.child2.e)         otherwise

after which ``parent.e >= child.e`` holds everywhere, and each node
carries the LOD interval ``[e_low, e_high) = [m.e, m.parent.e)``
(``[m.e, inf)`` for roots).  The uniform-LOD approximation at threshold
``e`` is then exactly the set of nodes whose interval contains ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import InvariantError, MeshError
from repro.geometry.primitives import Rect

__all__ = ["PMNode", "ProgressiveMesh", "NULL_ID", "LOD_INFINITY"]

#: Sentinel for "no node" (the paper's ``null``).
NULL_ID = -1

#: Stand-in for the unbounded top of a root's LOD interval.  Stored
#: explicitly so records and index entries stay finite.
LOD_INFINITY = float("inf")


@dataclass(slots=True)
class PMNode:
    """One node of the PM tree (paper Section 2's tuple).

    ``error`` is the raw approximation error assigned at collapse time;
    ``e`` is the normalised LOD value (filled by
    :meth:`ProgressiveMesh.normalize_lod`); ``e_high`` is the top of
    the node's LOD interval (the parent's ``e``, or infinity at roots).
    """

    id: int
    x: float
    y: float
    z: float
    error: float
    parent: int = NULL_ID
    child1: int = NULL_ID
    child2: int = NULL_ID
    wing1: int = NULL_ID
    wing2: int = NULL_ID
    e: float = 0.0
    e_high: float = LOD_INFINITY
    footprint: Rect | None = None

    @property
    def is_leaf(self) -> bool:
        """True for original terrain points."""
        return self.child1 == NULL_ID

    @property
    def e_low(self) -> float:
        """Bottom of the LOD interval (alias of the normalised ``e``)."""
        return self.e

    def interval_contains(self, lod: float) -> bool:
        """True if ``lod`` is inside the half-open interval
        ``[e_low, e_high)``."""
        return self.e <= lod < self.e_high

    def children(self) -> tuple[int, ...]:
        """The existing child ids (0, or 2 for internal nodes)."""
        if self.child1 == NULL_ID:
            return ()
        return (self.child1, self.child2)

    def wings(self) -> tuple[int, ...]:
        """The existing wing ids (0, 1 or 2)."""
        result = []
        if self.wing1 != NULL_ID:
            result.append(self.wing1)
        if self.wing2 != NULL_ID:
            result.append(self.wing2)
        return tuple(result)


class ProgressiveMesh:
    """A PM forest over a terrain point set.

    Node ids index into :attr:`nodes`; leaves occupy ids
    ``0 .. n_leaves - 1`` (matching the original vertex indices of the
    full-resolution mesh) and internal nodes follow in creation
    (collapse) order — an invariant the connectivity replay of
    :mod:`repro.core.connectivity` relies on.

    Attributes:
        nodes: all nodes, indexed by id.
        n_leaves: number of original terrain points.
        base_edges: undirected edge set of the full-resolution mesh,
            needed to seed the Direct Mesh connectivity lists.
    """

    def __init__(
        self,
        nodes: list[PMNode],
        n_leaves: int,
        base_edges: set[tuple[int, int]],
    ) -> None:
        self.nodes = nodes
        self.n_leaves = n_leaves
        self.base_edges = base_edges
        self._normalized = False

    # -- basic access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> PMNode:
        """The node with id ``node_id``."""
        return self.nodes[node_id]

    @property
    def roots(self) -> list[int]:
        """Ids of all parentless nodes (usually one, possibly a few)."""
        return [n.id for n in self.nodes if n.parent == NULL_ID]

    @property
    def internal_nodes(self) -> Iterator[PMNode]:
        """All non-leaf nodes, in creation order."""
        return (n for n in self.nodes[self.n_leaves:])

    @property
    def leaves(self) -> Iterator[PMNode]:
        """All leaf nodes (original terrain points)."""
        return (n for n in self.nodes[: self.n_leaves])

    def ancestors(self, node_id: int) -> Iterator[PMNode]:
        """The node's ancestors from parent to root."""
        current = self.nodes[node_id].parent
        while current != NULL_ID:
            node = self.nodes[current]
            yield node
            current = node.parent

    def descendants(self, node_id: int) -> Iterator[PMNode]:
        """All descendants of ``node_id`` (pre-order)."""
        stack = list(self.nodes[node_id].children())
        while stack:
            node = self.nodes[stack.pop()]
            yield node
            stack.extend(node.children())

    def depth(self, node_id: int) -> int:
        """Number of ancestors above ``node_id``."""
        return sum(1 for _ in self.ancestors(node_id))

    # -- LOD normalisation ----------------------------------------------------

    def normalize_lod(self) -> None:
        """Apply the paper's LOD normalisation and assign intervals.

        Idempotent.  After this, ``node.e`` is the normalised LOD
        (zero at leaves, ``max(error, children)`` internally),
        ``node.e_high`` is the parent's ``e`` (infinity at roots), and
        footprints are computed for every node.
        """
        if self._normalized:
            return
        # Creation order guarantees children precede parents.
        for node in self.nodes:
            if node.is_leaf:
                node.e = 0.0
            else:
                c1 = self.nodes[node.child1]
                c2 = self.nodes[node.child2]
                node.e = max(node.error, c1.e, c2.e)
        for node in self.nodes:
            if node.parent == NULL_ID:
                node.e_high = LOD_INFINITY
            else:
                node.e_high = self.nodes[node.parent].e
        self._compute_footprints()
        self._normalized = True

    def _compute_footprints(self) -> None:
        for node in self.nodes:
            if node.is_leaf:
                node.footprint = Rect(node.x, node.y, node.x, node.y)
            else:
                f1 = self.nodes[node.child1].footprint
                f2 = self.nodes[node.child2].footprint
                if f1 is None or f2 is None:
                    raise InvariantError(
                        "child footprint missing during bottom-up pass",
                        node=node.id,
                        child1=node.child1,
                        child2=node.child2,
                    )
                own = Rect(node.x, node.y, node.x, node.y)
                node.footprint = f1.union(f2).union(own)

    @property
    def is_normalized(self) -> bool:
        """True once :meth:`normalize_lod` has run."""
        return self._normalized

    # -- LOD statistics ----------------------------------------------------------

    def max_lod(self) -> float:
        """The largest (finite) normalised LOD value in the forest."""
        self._require_normalized()
        return max(n.e for n in self.nodes)

    def average_lod(self) -> float:
        """Mean normalised LOD over internal nodes.

        The paper sets the LOD of varying-ROI experiments to "the
        average LOD value of the dataset".
        """
        self._require_normalized()
        internal = [n.e for n in self.nodes[self.n_leaves:]]
        if not internal:
            return 0.0
        return sum(internal) / len(internal)

    def lod_percentile(self, fraction: float) -> float:
        """The LOD value below which ``fraction`` of internal nodes fall."""
        self._require_normalized()
        values = sorted(n.e for n in self.nodes[self.n_leaves:])
        if not values:
            return 0.0
        idx = min(len(values) - 1, max(0, int(fraction * len(values))))
        return values[idx]

    # -- uniform cuts (reference semantics) -----------------------------------------

    def uniform_cut(self, lod: float) -> list[int]:
        """Node ids of the uniform approximation at threshold ``lod``.

        This is the reference ("in-memory") implementation used as
        ground truth in tests: the set of nodes whose LOD interval
        contains ``lod``.
        """
        self._require_normalized()
        return [n.id for n in self.nodes if n.interval_contains(lod)]

    def cut_is_partition(self, cut: Sequence[int]) -> bool:
        """Check that ``cut`` covers every leaf exactly once."""
        covered: set[int] = set()
        for node_id in cut:
            node = self.nodes[node_id]
            members = [node.id] if node.is_leaf else []
            members += [d.id for d in self.descendants(node_id) if d.is_leaf]
            for leaf in members:
                if leaf in covered:
                    return False
                covered.add(leaf)
        return len(covered) == self.n_leaves

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`MeshError`.

        Invariants: ids are positional; leaves precede internal nodes;
        children precede parents; parent/child links are mutual; after
        normalisation, ``parent.e >= child.e`` and intervals chain
        (``child.e_high == parent.e``).
        """
        for idx, node in enumerate(self.nodes):
            if node.id != idx:
                raise MeshError(f"node at position {idx} has id {node.id}")
        for node in self.nodes[: self.n_leaves]:
            if not node.is_leaf:
                raise MeshError(f"node {node.id} in leaf range has children")
        for node in self.nodes[self.n_leaves:]:
            if node.is_leaf:
                raise MeshError(f"internal node {node.id} has no children")
            if node.child1 >= node.id or node.child2 >= node.id:
                raise MeshError(
                    f"node {node.id} created before child "
                    f"({node.child1}, {node.child2})"
                )
            for child_id in node.children():
                child = self.nodes[child_id]
                if child.parent != node.id:
                    raise MeshError(
                        f"child {child_id} does not point back to {node.id}"
                    )
        if self._normalized:
            for node in self.nodes:
                for child_id in node.children():
                    child = self.nodes[child_id]
                    if child.e > node.e:
                        raise MeshError(
                            f"normalisation violated: child {child_id} "
                            f"e={child.e} > parent {node.id} e={node.e}"
                        )
                    if child.e_high != node.e:
                        raise MeshError(
                            f"interval chain broken at {child_id}"
                        )

    def _require_normalized(self) -> None:
        if not self._normalized:
            raise MeshError(
                "call normalize_lod() before LOD-dependent operations"
            )
