"""Incremental mesh maintenance by vertex split / edge collapse.

Paper Figure 1(c): a PM-based processor reconstructs a terrain
approximation by *reversing* collapses — starting from a coarse mesh
and splitting vertices one by one, using each node's **wing points**
to decide how the fan of triangles is divided between the two children
("the connectivity information between the child nodes of v13 and
other nodes depends on the wing1 and wing2 of v13").

:class:`DynamicMesh` implements that machinery over an in-memory
:class:`~repro.mesh.progressive.ProgressiveMesh`:

* start from any uniform cut (usually the coarsest);
* :meth:`split` replaces a node by its two children and re-triangulates
  its neighbourhood using the recorded wings;
* :meth:`collapse` is the exact inverse;
* :meth:`refine_to` walks to a target LOD (uniform value or any object
  with a ``required_lod(x, y)`` method), splitting and collapsing as
  needed.

This is the CPU-side "selective refinement" the paper's PM baseline
performs after retrieval; tests verify its meshes agree exactly with
the Direct Mesh connection-list reconstruction, closing the loop
between the two encodings.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import MeshError
from repro.mesh.progressive import NULL_ID, ProgressiveMesh

__all__ = ["DynamicMesh"]


class DynamicMesh:
    """A mutable triangulated approximation over a PM.

    Attributes:
        pm: the backing progressive mesh (normalised).
        active: the ids currently forming the approximation.
    """

    def __init__(self, pm: ProgressiveMesh, start_lod: float | None = None):
        if not pm.is_normalized:
            raise MeshError("normalize_lod() must run before DynamicMesh")
        self.pm = pm
        if start_lod is None:
            # The coarsest non-empty cut: exactly the forest roots.
            start_lod = pm.max_lod()
        self.active: set[int] = set()
        self._neighbors: dict[int, set[int]] = {}
        self._bootstrap(pm.uniform_cut(start_lod))

    # -- construction -----------------------------------------------------

    def _bootstrap(self, cut: Iterable[int]) -> None:
        """Initialise adjacency for ``cut`` via leaf-descendant edges.

        Two cut nodes are adjacent iff some base-mesh edge connects a
        leaf descendant of one to a leaf descendant of the other (the
        order-independent characterisation of PM adjacency).
        """
        owner: dict[int, int] = {}
        for node_id in cut:
            node = self.pm.node(node_id)
            if node.is_leaf:
                owner[node_id] = node_id
            for descendant in self.pm.descendants(node_id):
                if descendant.is_leaf:
                    owner[descendant.id] = node_id
        self.active = set(cut)
        self._neighbors = {node_id: set() for node_id in self.active}
        for a, b in self.pm.base_edges:
            oa = owner.get(a)
            ob = owner.get(b)
            if oa is None or ob is None or oa == ob:
                continue
            self._neighbors[oa].add(ob)
            self._neighbors[ob].add(oa)

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.active)

    def neighbors(self, node_id: int) -> set[int]:
        """The active nodes adjacent to ``node_id``."""
        return set(self._neighbors[node_id])

    def edges(self) -> set[tuple[int, int]]:
        """Undirected active edges as ``(lo, hi)`` pairs."""
        result: set[tuple[int, int]] = set()
        for a, nbrs in self._neighbors.items():
            for b in nbrs:
                result.add((a, b) if a < b else (b, a))
        return result

    def triangles(self) -> list[tuple[int, int, int]]:
        """Triangles of the current approximation (angular extraction)."""
        tris: set[tuple[int, int, int]] = set()
        for nid, nbrs in self._neighbors.items():
            if len(nbrs) < 2:
                continue
            origin = self.pm.node(nid)
            ordered = sorted(
                nbrs,
                key=lambda other: math.atan2(
                    self.pm.node(other).y - origin.y,
                    self.pm.node(other).x - origin.x,
                ),
            )
            count = len(ordered)
            for i in range(count):
                a = ordered[i]
                b = ordered[(i + 1) % count]
                if count == 2 and i == 1:
                    break
                if b in self._neighbors[a]:
                    tris.add(tuple(sorted((nid, a, b))))  # type: ignore[arg-type]
        return sorted(tris)

    # -- operations -----------------------------------------------------------

    def split(self, node_id: int, mode: str = "leaves") -> None:
        """Replace an active node by its two children (vertex split).

        The children partition the parent's neighbourhood; the wing
        points connect to *both* children (they bounded the collapsed
        edge) and the children are always connected to each other.
        The remaining neighbours are assigned by ``mode``:

        * ``"leaves"`` — exact: a neighbour goes to the child with a
          leaf-descendant base-mesh edge to it (possibly both).
          Requires the in-memory PM (it consults the base edges).
        * ``"wings"`` — what a database-side PM processor does (paper
          Figure 1(c)): the wings cut the parent's angular fan into
          two arcs; each arc attaches to the geometrically matching
          child.  Needs only the fetched records.  Exact whenever two
          wings survive; with fewer wings it falls back to per-
          neighbour geometric assignment.
        """
        if node_id not in self.active:
            raise MeshError(f"node {node_id} is not active")
        node = self.pm.node(node_id)
        if node.is_leaf:
            raise MeshError(f"node {node_id} is a leaf; cannot split")
        if mode not in ("leaves", "wings"):
            raise MeshError(f"unknown split mode {mode!r}")
        if mode == "wings":
            # Classic PM vsplit dependency (Hoppe): the wing vertices
            # must be active before the split.  Force-split their
            # active ancestors first; this can refine beyond the
            # requested cut — the structural overhead DM avoids.
            for wing in self.pm.node(node_id).wings():
                self._force_active(wing, guard=0)
            if node_id not in self.active:
                # A forced split may have handled this node already.
                return
        node = self.pm.node(node_id)
        c1, c2 = node.child1, node.child2
        old_neighbors = self._neighbors.pop(node_id)
        self.active.discard(node_id)

        wings = set(node.wings()) & old_neighbors
        undecided = []
        assign1: set[int] = set(wings)
        assign2: set[int] = set(wings)
        for nbr in old_neighbors:
            self._neighbors[nbr].discard(node_id)
            if nbr not in wings:
                undecided.append(nbr)
        if undecided:
            if mode == "leaves":
                self._assign_by_leaves(c1, c2, undecided, assign1, assign2)
            else:
                self._assign_by_wings(
                    node, c1, c2, wings, undecided, assign1, assign2
                )

        self.active.add(c1)
        self.active.add(c2)
        self._neighbors[c1] = assign1 | {c2}
        self._neighbors[c2] = assign2 | {c1}
        for nbr in assign1:
            self._neighbors[nbr].add(c1)
        for nbr in assign2:
            self._neighbors[nbr].add(c2)

    def _force_active(self, node_id: int, guard: int) -> None:
        """Split active ancestors until ``node_id`` itself is active."""
        if guard > len(self.pm.nodes):
            raise MeshError("forced-split recursion did not terminate")
        if node_id in self.active:
            return
        # Find the active ancestor covering node_id.
        current = node_id
        ancestor = None
        while current != NULL_ID:
            if current in self.active:
                ancestor = current
                break
            current = self.pm.node(current).parent
        if ancestor is None:
            # node_id lies *below* the active cut: it was already
            # refined past; nothing to do (its region is finer).
            return
        # Split downward along the path from the ancestor to node_id.
        while node_id not in self.active:
            if ancestor not in self.active:
                # A nested forced split replaced it; re-resolve.
                self._force_active(node_id, guard + 1)
                return
            self.split(ancestor, mode="wings")
            # Descend: pick whichever child is an ancestor-or-self of
            # node_id.
            next_ancestor = None
            for child in self.pm.node(ancestor).children():
                probe = node_id
                while probe != NULL_ID:
                    if probe == child:
                        next_ancestor = child
                        break
                    probe = self.pm.node(probe).parent
                if next_ancestor is not None:
                    break
            if next_ancestor is None:
                return  # node_id not under this subtree anymore.
            ancestor = next_ancestor

    def _assign_by_leaves(
        self,
        c1: int,
        c2: int,
        undecided: list[int],
        assign1: set[int],
        assign2: set[int],
    ) -> None:
        leaves1 = self._leaf_set(c1)
        leaves2 = self._leaf_set(c2)
        for nbr in undecided:
            nbr_leaves = self._leaf_set(nbr)
            if self._leaves_touch(leaves1, nbr_leaves):
                assign1.add(nbr)
            # A neighbour can touch both children even without being a
            # wing at collapse time (its own wing vertex may have been
            # merged away since); test child 2 independently.
            if self._leaves_touch(leaves2, nbr_leaves):
                assign2.add(nbr)

    def _assign_by_wings(
        self,
        node,
        c1: int,
        c2: int,
        wings: set[int],
        undecided: list[int],
        assign1: set[int],
        assign2: set[int],
    ) -> None:
        """Wing-arc assignment (paper Figure 1(c) semantics)."""
        p1 = self.pm.node(c1)
        p2 = self.pm.node(c2)

        def angle_from(origin, other_id: int) -> float:
            other = self.pm.node(other_id)
            return math.atan2(other.y - origin.y, other.x - origin.x)

        if len(wings) == 2:
            w1, w2 = sorted(wings)
            a_w1 = angle_from(node, w1)
            a_w2 = angle_from(node, w2)
            # Work on the circle relative to w1's direction so the
            # atan2 branch cut cannot split an arc.
            span = (a_w2 - a_w1) % math.tau

            def in_first_arc(angle: float) -> bool:
                return 0.0 < (angle - a_w1) % math.tau < span

            c1_inside = in_first_arc(angle_from(node, c1))
            c2_inside = in_first_arc(angle_from(node, c2))
            if c1_inside != c2_inside:
                for nbr in undecided:
                    if in_first_arc(angle_from(node, nbr)) == c1_inside:
                        assign1.add(nbr)
                    else:
                        assign2.add(nbr)
                return
            # Degenerate child directions (both in one arc, e.g. the
            # children sit nearly on top of the parent): fall through
            # to the distance heuristic below.
        if len(wings) == 1:
            # Boundary split: the single wing's ray from the parent
            # separates the (open) fan into the two children's sides.
            (w,) = wings
            a_w = angle_from(node, w)

            def side(angle: float) -> int:
                diff = (angle - a_w + math.pi) % math.tau - math.pi
                return 1 if diff >= 0 else -1

            s_c1 = side(angle_from(node, c1))
            s_c2 = side(angle_from(node, c2))
            if s_c1 != s_c2:
                for nbr in undecided:
                    if side(angle_from(node, nbr)) == s_c1:
                        assign1.add(nbr)
                    else:
                        assign2.add(nbr)
                return
        # No usable wings or degenerate child directions: fall back to
        # assigning each neighbour to the nearer child.
        for nbr in undecided:
            other = self.pm.node(nbr)
            d1 = (other.x - p1.x) ** 2 + (other.y - p1.y) ** 2
            d2 = (other.x - p2.x) ** 2 + (other.y - p2.y) ** 2
            (assign1 if d1 <= d2 else assign2).add(nbr)

    def collapse(self, node_id: int) -> None:
        """Replace the two children of ``node_id`` by the node itself."""
        node = self.pm.node(node_id)
        c1, c2 = node.child1, node.child2
        if c1 not in self.active or c2 not in self.active:
            raise MeshError(
                f"children of {node_id} are not both active"
            )
        n1 = self._neighbors.pop(c1)
        n2 = self._neighbors.pop(c2)
        self.active.discard(c1)
        self.active.discard(c2)
        merged = (n1 | n2) - {c1, c2}
        for nbr in n1 | n2:
            if nbr in self._neighbors:
                self._neighbors[nbr].discard(c1)
                self._neighbors[nbr].discard(c2)
        self.active.add(node_id)
        self._neighbors[node_id] = merged
        for nbr in merged:
            self._neighbors[nbr].add(node_id)

    # -- refinement ------------------------------------------------------------

    def refine_to(self, target, mode: str = "leaves") -> tuple[int, int]:
        """Drive the mesh to the cut selected by ``target``.

        ``target`` is a uniform LOD value or any object exposing
        ``required_lod(x, y)`` (e.g. a
        :class:`~repro.geometry.plane.QueryPlane`); ``mode`` selects
        the split neighbour-assignment strategy (see :meth:`split`).
        Returns ``(splits, collapses)`` performed.
        """
        if hasattr(target, "required_lod"):
            required = target.required_lod
        else:
            value = float(target)

            def required(x: float, y: float) -> float:
                return value

        splits = collapses = 0
        # Phase 1: split everything too coarse, coarsest first.  The
        # descending-LOD order matters for "wings" mode: it replays
        # the collapse sequence backwards, so each split sees (close
        # to) its collapse-time neighbourhood.
        again = True
        while again:
            again = False
            for node_id in sorted(
                self.active, key=lambda i: -self.pm.node(i).e
            ):
                if node_id not in self.active:
                    continue
                node = self.pm.node(node_id)
                if not node.is_leaf and node.e > required(node.x, node.y):
                    self.split(node_id, mode=mode)
                    splits += 1
                    again = True
        # Phase 2: collapse sibling pairs that are too fine.
        again = True
        while again:
            again = False
            for node_id in list(self.active):
                if node_id not in self.active:
                    continue
                node = self.pm.node(node_id)
                parent_id = node.parent
                if parent_id == NULL_ID:
                    continue
                parent = self.pm.node(parent_id)
                sibling = (
                    parent.child2
                    if parent.child1 == node_id
                    else parent.child1
                )
                if sibling not in self.active:
                    continue
                if parent.e <= required(parent.x, parent.y):
                    self.collapse(parent_id)
                    collapses += 1
                    again = True
        return splits, collapses

    # -- internals ----------------------------------------------------------------

    def _leaf_set(self, node_id: int) -> frozenset[int]:
        cached = self._leaf_cache.get(node_id) if hasattr(self, "_leaf_cache") else None
        if cached is not None:
            return cached
        if not hasattr(self, "_leaf_cache"):
            self._leaf_cache: dict[int, frozenset[int]] = {}
        node = self.pm.node(node_id)
        if node.is_leaf:
            result = frozenset((node_id,))
        else:
            result = frozenset(
                d.id for d in self.pm.descendants(node_id) if d.is_leaf
            )
        self._leaf_cache[node_id] = result
        return result

    def _leaves_touch(
        self, leaves_a: frozenset[int], leaves_b: frozenset[int]
    ) -> bool:
        small, large = (
            (leaves_a, leaves_b)
            if len(leaves_a) <= len(leaves_b)
            else (leaves_b, leaves_a)
        )
        base = self.pm.base_edges
        if not hasattr(self, "_base_adj"):
            self._base_adj: dict[int, set[int]] = {}
            for a, b in base:
                self._base_adj.setdefault(a, set()).add(b)
                self._base_adj.setdefault(b, set()).add(a)
        for leaf in small:
            if self._base_adj.get(leaf, frozenset()) & large:
                return True
        return False

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the active set is an antichain cut with symmetric
        adjacency; raises :class:`MeshError`."""
        for node_id in self.active:
            for ancestor in self.pm.ancestors(node_id):
                if ancestor.id in self.active:
                    raise MeshError(
                        f"active set contains ancestor pair "
                        f"({node_id}, {ancestor.id})"
                    )
        for a, nbrs in self._neighbors.items():
            for b in nbrs:
                if a not in self._neighbors[b]:
                    raise MeshError(f"asymmetric adjacency ({a}, {b})")
                if b not in self.active:
                    raise MeshError(f"edge to inactive node {b}")
