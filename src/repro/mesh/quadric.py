"""Quadric error metrics (Garland & Heckbert, SIGGRAPH '97).

The paper pre-processes both evaluation datasets "using the Quadric
Error Metrics [7]" — edge collapses are ordered by the QEM cost, and
each new parent point is placed at the position minimising its quadric.

A quadric is the symmetric 4x4 matrix ``Q = sum_p K_p`` over the planes
``p`` of the triangles around a vertex, where for plane
``ax + by + cz + d = 0`` (normalised) ``K_p = pp^T``.  The error of
placing the merged vertex at ``v`` is ``v^T Q v``.

We store the 10 distinct coefficients in a flat tuple, which profiles
measurably faster than numpy for these tiny matrices in CPython.
"""

from __future__ import annotations

import math

__all__ = ["Quadric", "triangle_plane_quadric"]


class Quadric:
    """A symmetric 4x4 quadric form.

    Coefficient layout (row-major upper triangle)::

        [ a  b  c  d ]
        [ b  e  f  g ]
        [ c  f  h  i ]
        [ d  g  i  j ]
    """

    __slots__ = ("a", "b", "c", "d", "e", "f", "g", "h", "i", "j")

    def __init__(
        self,
        a: float = 0.0,
        b: float = 0.0,
        c: float = 0.0,
        d: float = 0.0,
        e: float = 0.0,
        f: float = 0.0,
        g: float = 0.0,
        h: float = 0.0,
        i: float = 0.0,
        j: float = 0.0,
    ) -> None:
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.e = e
        self.f = f
        self.g = g
        self.h = h
        self.i = i
        self.j = j

    @classmethod
    def from_plane(cls, a: float, b: float, c: float, d: float) -> "Quadric":
        """The fundamental quadric ``pp^T`` of plane ``ax+by+cz+d = 0``.

        The plane coefficients should be normalised
        (``a^2 + b^2 + c^2 = 1``) so errors are squared distances.
        """
        return cls(
            a * a, a * b, a * c, a * d,
            b * b, b * c, b * d,
            c * c, c * d,
            d * d,
        )

    def __add__(self, other: "Quadric") -> "Quadric":
        return Quadric(
            self.a + other.a,
            self.b + other.b,
            self.c + other.c,
            self.d + other.d,
            self.e + other.e,
            self.f + other.f,
            self.g + other.g,
            self.h + other.h,
            self.i + other.i,
            self.j + other.j,
        )

    def __iadd__(self, other: "Quadric") -> "Quadric":
        self.a += other.a
        self.b += other.b
        self.c += other.c
        self.d += other.d
        self.e += other.e
        self.f += other.f
        self.g += other.g
        self.h += other.h
        self.i += other.i
        self.j += other.j
        return self

    def scaled(self, factor: float) -> "Quadric":
        """A copy with every coefficient multiplied by ``factor``."""
        return Quadric(
            self.a * factor, self.b * factor, self.c * factor,
            self.d * factor, self.e * factor, self.f * factor,
            self.g * factor, self.h * factor, self.i * factor,
            self.j * factor,
        )

    def error(self, x: float, y: float, z: float) -> float:
        """``v^T Q v`` for ``v = (x, y, z, 1)``.

        Clamped at zero: tiny negative values can appear from rounding.
        """
        value = (
            self.a * x * x
            + 2 * self.b * x * y
            + 2 * self.c * x * z
            + 2 * self.d * x
            + self.e * y * y
            + 2 * self.f * y * z
            + 2 * self.g * y
            + self.h * z * z
            + 2 * self.i * z
            + self.j
        )
        return value if value > 0.0 else 0.0

    def optimal_point(self) -> tuple[float, float, float] | None:
        """The position minimising the quadric, or ``None`` if singular.

        Solves the 3x3 linear system from the quadric's gradient by
        Cramer's rule; returns ``None`` when the determinant is too
        small (e.g. all source planes parallel), in which case the
        caller should fall back to candidate positions.
        """
        a, b, c, e, f, h = self.a, self.b, self.c, self.e, self.f, self.h
        det = (
            a * (e * h - f * f)
            - b * (b * h - f * c)
            + c * (b * f - e * c)
        )
        scale = max(abs(a), abs(e), abs(h), 1e-300)
        if abs(det) < 1e-10 * scale * scale * scale:
            return None
        rx, ry, rz = -self.d, -self.g, -self.i
        inv = 1.0 / det
        x = (
            rx * (e * h - f * f)
            - b * (ry * h - f * rz)
            + c * (ry * f - e * rz)
        ) * inv
        y = (
            a * (ry * h - rz * f)
            - rx * (b * h - f * c)
            + c * (b * rz - ry * c)
        ) * inv
        z = (
            a * (e * rz - ry * f)
            - b * (b * rz - ry * c)
            + rx * (b * f - e * c)
        ) * inv
        if not (math.isfinite(x) and math.isfinite(y) and math.isfinite(z)):
            return None
        return (x, y, z)

    def as_tuple(self) -> tuple[float, ...]:
        """The 10 coefficients in documented order."""
        return (
            self.a, self.b, self.c, self.d, self.e,
            self.f, self.g, self.h, self.i, self.j,
        )

    def __repr__(self) -> str:
        return f"Quadric{self.as_tuple()}"


def triangle_plane_quadric(
    p0: tuple[float, float, float],
    p1: tuple[float, float, float],
    p2: tuple[float, float, float],
    area_weighted: bool = True,
) -> Quadric | None:
    """The fundamental quadric of the plane through a triangle.

    Returns ``None`` for degenerate (zero-area) triangles.  With
    ``area_weighted`` the quadric is scaled by the triangle area, the
    standard refinement that makes errors insensitive to tessellation
    density.
    """
    ux = p1[0] - p0[0]
    uy = p1[1] - p0[1]
    uz = p1[2] - p0[2]
    vx = p2[0] - p0[0]
    vy = p2[1] - p0[1]
    vz = p2[2] - p0[2]
    nx = uy * vz - uz * vy
    ny = uz * vx - ux * vz
    nz = ux * vy - uy * vx
    norm = math.sqrt(nx * nx + ny * ny + nz * nz)
    if norm < 1e-30:
        return None
    nx /= norm
    ny /= norm
    nz /= norm
    d = -(nx * p0[0] + ny * p0[1] + nz * p0[2])
    q = Quadric.from_plane(nx, ny, nz, d)
    if area_weighted:
        # The triangle area is half the (pre-normalisation) cross norm.
        q = q.scaled(norm / 2.0)
    return q
