"""In-memory selective refinement — the reference query semantics.

These functions answer terrain queries directly on an in-memory
:class:`~repro.mesh.progressive.ProgressiveMesh`, with no storage
layer.  They define the *ground truth* that both the Direct Mesh query
processor and the database-backed PM baseline must agree with; the
test suite compares all three.

Query semantics (paper Sections 2 and 5):

* A **viewpoint-independent** query ``Q(M, r, e)`` returns the nodes
  whose LOD interval contains ``e`` and whose point lies in ``r`` —
  the leaves of the paper's result sub-tree ``M'``.
* A **viewpoint-dependent** query is "a number of viewpoint-independent
  queries, each with a sub-region and a uniform LOD" (paper Section 2):
  we evaluate the required LOD of the query plane at each node's own
  position, so a node qualifies iff its interval contains
  ``required_lod(x, y)``.  This pointwise rule is what a per-sub-region
  decomposition converges to as sub-regions shrink, and it gives every
  retrieval method an identical, order-independent target.
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry.plane import QueryPlane
from repro.geometry.primitives import Rect
from repro.mesh.progressive import ProgressiveMesh

__all__ = [
    "uniform_query_ref",
    "viewdep_query_ref",
    "selective_subtree",
]


def uniform_query_ref(
    pm: ProgressiveMesh, roi: Rect, lod: float
) -> set[int]:
    """Reference result of the viewpoint-independent query ``Q(M, r, e)``.

    Returns the ids of nodes forming the terrain approximation: LOD
    interval contains ``lod`` and the point lies inside ``roi``.
    Implemented as a footprint-pruned top-down traversal (the process
    paper Section 2 describes), which is equivalent to filtering the
    uniform cut but exercises the tree structure.
    """
    result: set[int] = set()
    stack = list(pm.roots)
    while stack:
        node = pm.node(stack.pop())
        footprint = node.footprint
        if footprint is not None and not footprint.intersects(roi):
            continue
        if node.e <= lod:
            # Leaf of the result sub-tree M'.
            if roi.contains_point(node.x, node.y) and node.interval_contains(lod):
                result.add(node.id)
            continue
        stack.extend(node.children())
    return result


def viewdep_query_ref(pm: ProgressiveMesh, plane: QueryPlane) -> set[int]:
    """Reference result of a viewpoint-dependent query.

    A node qualifies iff its LOD interval contains the plane's required
    LOD at the node's own ``(x, y)`` and the point lies in the ROI.
    Implemented as a plain filter over all nodes: deliberately the
    simplest possible statement of the semantics, so it can serve as
    ground truth for the optimised query processors.
    """
    roi = plane.roi
    result: set[int] = set()
    for node in pm.nodes:
        if not roi.contains_point(node.x, node.y):
            continue
        required = plane.required_lod(node.x, node.y)
        if node.interval_contains(required):
            result.add(node.id)
    return result


def selective_subtree(
    pm: ProgressiveMesh, roi: Rect, lod: float
) -> tuple[set[int], set[int]]:
    """The full result *sub-tree* ``M'`` of ``Q(M, r, e)``.

    Returns ``(internal_ids, leaf_ids)``: the internal nodes that a
    PM-based processor must traverse for connectivity, and the leaf
    nodes forming the approximation.  This quantifies the retrieval
    overhead that motivates Direct Mesh (paper Sections 1-2): the
    internal set, including each leaf's ancestors up to the root, is
    what selective refinement has to fetch besides the answer itself.
    """
    internal: set[int] = set()
    leaves: set[int] = set()
    stack = list(pm.roots)
    while stack:
        node = pm.node(stack.pop())
        footprint = node.footprint
        if footprint is not None and not footprint.intersects(roi):
            continue
        if node.e <= lod:
            if roi.contains_point(node.x, node.y) and node.interval_contains(lod):
                leaves.add(node.id)
            continue
        internal.add(node.id)
        stack.extend(node.children())
    return internal, leaves


def cut_edges(
    pm: ProgressiveMesh,
    node_ids: Iterable[int],
    connection_lists: dict[int, list[int]] | None = None,
) -> set[tuple[int, int]]:
    """Edges among ``node_ids`` when they form (part of) one approximation.

    With ``connection_lists`` (from
    :mod:`repro.core.connectivity`) this is a simple filter; it exists
    here so tests can compare reference cuts against reconstructed
    meshes without importing the core package.
    """
    ids = set(node_ids)
    edges: set[tuple[int, int]] = set()
    if connection_lists is None:
        raise ValueError("connection_lists is required")
    for node_id in ids:
        for other in connection_lists.get(node_id, ()):
            if other in ids:
                edges.add((node_id, other) if node_id < other else (other, node_id))
    return edges
