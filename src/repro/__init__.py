"""Reproduction of *Direct Mesh: a Multiresolution Approach to Terrain
Visualization* (Kai Xu, Xiaofang Zhou, Xuemin Lin -- ICDE 2004).

The package implements the paper's contribution -- the Direct Mesh (DM)
multiresolution terrain structure with database-backed query processing
-- together with every substrate it depends on: a triangular-mesh and
progressive-mesh (PM) library, a page/buffer storage engine with
disk-access accounting, spatial indexes (R*-tree, LOD-quadtree,
LOD-R-tree, HDoV-tree, B+-tree), baseline query processors, and the
benchmark harness that regenerates the paper's figures.

See ``examples/quickstart.py`` for a complete walk-through.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
