"""Exception hierarchy for the Direct Mesh reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing subsystems when they need to.

Errors carry structured **context fields**: keyword arguments beyond
the message are stored on :attr:`ReproError.context` and rendered into
``str(err)``, so a failure deep in the storage engine can surface
*which* page, segment, or node it was about without string parsing.
Every error class round-trips through :mod:`pickle` (message and
context intact) — a requirement for future multiprocess workers, whose
failures cross process boundaries inside futures.

Production invariants must raise :class:`InvariantError` (or another
typed error) instead of using ``assert``: assert statements are
stripped under ``python -O``, silently disabling the check.  The
``reprolint`` rule R4 (:mod:`repro.analysis`) enforces this over
``src/``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`.

    Args:
        message: human-readable description of the failure.
        **context: structured context fields (page numbers, segment
            names, node ids, ...), kept on :attr:`context` and shown
            in ``str(err)``.
    """

    def __init__(self, message: str = "", **context: object) -> None:
        super().__init__(message)
        self.context: dict[str, object] = dict(context)

    @property
    def message(self) -> str:
        """The human-readable message (without context fields)."""
        return str(self.args[0]) if self.args else ""

    def __str__(self) -> str:
        base = self.message
        if self.context:
            rendered = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.context.items())
            )
            return f"{base} [{rendered}]" if base else f"[{rendered}]"
        return base

    def __reduce__(
        self,
    ) -> tuple[type, tuple[object, ...], dict[str, object]]:
        # BaseException's default reduce already carries args + __dict__,
        # but being explicit keeps subclasses with extra positional
        # parameters honest: reconstruction is always cls(*args) followed
        # by a __dict__ restore.
        return (type(self), self.args, self.__dict__)


class InvariantError(ReproError):
    """An internal invariant of the library was violated.

    Raised where an ``assert`` would otherwise live: seeing one of
    these always indicates a bug in :mod:`repro` itself (or memory
    corruption), never bad user input.  Unlike ``assert``, the check
    survives ``python -O``.
    """


class GeometryError(ReproError):
    """A geometric operation received degenerate or inconsistent input."""


class TriangulationError(GeometryError):
    """Delaunay triangulation could not be completed."""


class MeshError(ReproError):
    """A triangle-mesh operation violated mesh invariants."""


class SimplificationError(MeshError):
    """Edge-collapse simplification could not make progress."""


class StorageError(ReproError):
    """A failure in the page/buffer/heap-file storage substrate."""


class TransientIOError(StorageError):
    """A read failed in a way that is expected to succeed on retry.

    Raised by :class:`repro.storage.faults.FaultInjector` (and usable
    by any future real device backend for EINTR/EAGAIN-shaped
    failures).  The serving layer treats this class — and only this
    class — as retryable.
    """


class PageError(StorageError):
    """A page-level failure (bad page id, overflow, corrupt header)."""


class PageCorruptionError(StorageError):
    """A page failed checksum verification on read.

    Raised by :meth:`repro.storage.pager.Pager.read_page` when a v2
    (checksummed) page's CRC trailer does not match its contents —
    bit rot, a torn write, or zeroed sectors.  Context carries
    ``segment``, ``page``, ``expected`` and ``actual`` checksums.

    Deliberately **not** a :class:`TransientIOError`: re-reading a
    rotten page returns the same bytes, so the query engine must not
    retry it — it quarantines the page and degrades instead (see
    :class:`repro.core.engine.QueryEngine`).  Repair goes through
    ``python -m repro fsck --repair``.
    """


class BufferPoolError(StorageError):
    """The buffer pool was used inconsistently (e.g. over-pinning)."""


class RecordError(StorageError):
    """A record failed to encode or decode."""


class IndexError_(ReproError):
    """A failure in an index structure (B+-tree, R*-tree, quadtree).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`, which has unrelated semantics.
    """


class QueryError(ReproError):
    """A terrain query was malformed or could not be evaluated."""


class DeadlineExceededError(QueryError):
    """A request's deadline expired before a result could be produced.

    Surfaced as a per-request :attr:`QueryOutcome.error` by the query
    engine; it never aborts sibling requests in a batch.
    """


class OverloadShedError(QueryError):
    """A request was shed by admission control and could not be
    answered even by the degraded base-mesh path.

    The :class:`~repro.core.engine.CostGovernor` sheds requests whose
    estimated cost does not fit the in-flight budget.  Shed *uniform*
    requests are normally answered from the engine's base-mesh
    snapshot (a well-formed degraded result, not an error); this error
    surfaces only for non-degradable requests or when no snapshot can
    be built (e.g. an empty store).
    """


class SessionError(QueryError):
    """A progressive-transmission session is in an unusable state.

    Raised by the delta-session layer (:mod:`repro.core.streaming`,
    :mod:`repro.core.wire`) for protocol — not codec — failures: a
    client applying frames out of order, a splice that references ids
    the client mesh does not hold, or a duplicate/unknown session id.
    Malformed *bytes* raise :class:`RecordError` instead; a
    ``SessionError`` means both peers decoded fine but their states
    disagree, and the client should request a keyframe resync.
    """


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or cached."""


class PatchError(DatasetError):
    """A DEM patch was malformed and could not be applied.

    Raised by :meth:`repro.terrain.dem.DEM.apply_patch` for off-grid,
    out-of-bounds, zero-area, mis-shaped, or non-numeric patches —
    *before* any height is touched, so a rejected patch never leaves
    the grid half-updated.  Context carries the offending region,
    expected and actual shapes, and the grid geometry, instead of the
    numpy broadcasting error the raw assignment would raise.
    """


class MutationError(StorageError):
    """A live-mutation transaction could not be staged or committed.

    Raised by :mod:`repro.core.mutate` for protocol failures: patching
    through a store handle whose previous patch aborted mid-flight,
    staging over segments that cannot be cleared, or opening a mutable
    store whose tile sidecar is missing or inconsistent.  A crash
    *during* a patch is not an error — recovery lands the store on the
    pre- or post-patch snapshot — but the in-process handle that threw
    must be reopened before it may patch again.
    """
