"""Exception hierarchy for the Direct Mesh reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing subsystems when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """A geometric operation received degenerate or inconsistent input."""


class TriangulationError(GeometryError):
    """Delaunay triangulation could not be completed."""


class MeshError(ReproError):
    """A triangle-mesh operation violated mesh invariants."""


class SimplificationError(MeshError):
    """Edge-collapse simplification could not make progress."""


class StorageError(ReproError):
    """A failure in the page/buffer/heap-file storage substrate."""


class TransientIOError(StorageError):
    """A read failed in a way that is expected to succeed on retry.

    Raised by :class:`repro.storage.faults.FaultInjector` (and usable
    by any future real device backend for EINTR/EAGAIN-shaped
    failures).  The serving layer treats this class — and only this
    class — as retryable.
    """


class PageError(StorageError):
    """A page-level failure (bad page id, overflow, corrupt header)."""


class BufferPoolError(StorageError):
    """The buffer pool was used inconsistently (e.g. over-pinning)."""


class RecordError(StorageError):
    """A record failed to encode or decode."""


class IndexError_(ReproError):
    """A failure in an index structure (B+-tree, R*-tree, quadtree).

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`, which has unrelated semantics.
    """


class QueryError(ReproError):
    """A terrain query was malformed or could not be evaluated."""


class DeadlineExceededError(QueryError):
    """A request's deadline expired before a result could be produced.

    Surfaced as a per-request :attr:`QueryOutcome.error` by the query
    engine; it never aborts sibling requests in a batch.
    """


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or cached."""
