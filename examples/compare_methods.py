"""Side-by-side comparison of the three retrieval methods.

Builds Direct Mesh, PM/LOD-quadtree, and HDoV-tree stores over the
same terrain and answers the same viewpoint-independent query with
each, printing the per-segment statistics report (the reproduction's
Oracle "performance statistics") so the cost structure is visible:
where PM burns its accesses (B+-tree node chasing), where HDoV does
(whole-object version reads), and why DM stays close to the result
size.

Run:  python examples/compare_methods.py [roi_percent] [lod_percent]
"""

import sys
import tempfile
from pathlib import Path

from repro.baselines.pm_db import PMStore
from repro.core import DirectMeshStore, build_connection_lists
from repro.index.hdov import HDoVTree
from repro.mesh import SimplifyConfig, simplify_to_pm
from repro.storage import Database
from repro.terrain import DEM, crater_field


def main(roi_percent: float = 10.0, lod_percent: float = 5.0) -> None:
    print("building a crater terrain (12k points) and all three stores...")
    field = crater_field(exponent=8, seed=5)
    mesh = DEM(field, "crater-demo").to_scattered_trimesh(12000, seed=5)
    pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
    pm.normalize_lod()
    connections = build_connection_lists(pm)

    with tempfile.TemporaryDirectory() as tmp:
        db = Database(Path(tmp) / "db", pool_pages=512)
        dm = DirectMeshStore.build(pm, db, connections)
        pm_store = PMStore.build(pm, db)
        hdov = HDoVTree.build(
            pm, field, db, connections=connections, grid=4
        )

        bounds = mesh.bounds()
        side = (bounds.area * roi_percent / 100) ** 0.5
        roi = bounds.scaled(side / bounds.width)
        lod = pm.max_lod() * lod_percent / 100
        print(
            f"\nquery: ROI = {roi_percent:.0f}% of area, "
            f"LOD = {lod_percent:.0f}% of max ({lod:.2f})"
        )

        db.begin_measured_query()
        dm_result = dm.uniform_query(roi, lod)
        dm_stats = db.stats.snapshot()

        db.begin_measured_query()
        pm_result = pm_store.uniform_query(roi, lod)
        pm_stats = db.stats.snapshot()

        db.begin_measured_query()
        hdov_result = hdov.uniform_query(roi, lod)
        hdov_stats = db.stats.snapshot()

        print("\n=== Direct Mesh (one 3D range query) ===")
        print(f"result: {len(dm_result)} points "
              f"(retrieved {dm_result.retrieved} records)")
        print(dm_stats.report())

        print("\n=== PM over LOD-quadtree (selective refinement) ===")
        print(
            f"result: {len(pm_result)} points "
            f"(index returned {pm_result.retrieved_from_index}, "
            f"fetched {pm_result.fetched_individually} one-by-one, "
            f"expanded {pm_result.traversed} internal nodes)"
        )
        print(pm_stats.report())

        print("\n=== HDoV-tree (whole-object versions) ===")
        print(
            f"result: {len(hdov_result)} points in ROI "
            f"(scanned {hdov_result.records_scanned} records in "
            f"{hdov_result.versions_read} version reads)"
        )
        print(hdov_stats.report())

        print("\nsummary (disk accesses):")
        rows = [
            ("DM", dm_stats.disk_accesses),
            ("PM", pm_stats.disk_accesses),
            ("HDoV", hdov_stats.disk_accesses),
        ]
        best = min(v for _, v in rows)
        for name, value in rows:
            marker = "  <-- best" if value == best else ""
            print(f"  {name:<6} {value:>6}{marker}")
        db.close()


if __name__ == "__main__":
    roi = float(sys.argv[1]) if len(sys.argv) > 1 else 10.0
    lod = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0
    main(roi, lod)
