"""DEM pipeline: file in, multiresolution database out, tiles back.

Mirrors how a GIS shop would adopt the library: ingest an elevation
raster from disk (ESRI ASCII, the USGS interchange family), build the
multiresolution store once, then serve terrain "tiles" at arbitrary
LODs — the ROI + LOD query of the paper — exporting each tile as OBJ
and rendering an overview hillshade.

Run:  python examples/dem_pipeline.py [path/to/dem.asc]
(with no argument, a synthetic crater DEM is written and used)
"""

import sys
import tempfile
from pathlib import Path

from repro.core import DirectMeshStore, build_connection_lists
from repro.mesh import SimplifyConfig, simplify_to_pm
from repro.storage import Database
from repro.terrain import (
    DEM,
    crater_field,
    read_esri_ascii,
    write_esri_ascii,
    write_obj,
)
from repro.viz import render_hillshade


def main(dem_path: str | None = None) -> None:
    out = Path("results")
    out.mkdir(exist_ok=True)

    if dem_path is None:
        dem_path = str(out / "crater_demo.asc")
        write_esri_ascii(dem_path, crater_field(exponent=7, seed=13))
        print(f"wrote synthetic DEM to {dem_path}")

    field = read_esri_ascii(dem_path)
    print(
        f"DEM: {field.n_rows} x {field.n_cols} cells, "
        f"elevation {field.elevation_range()[0]:.0f}.."
        f"{field.elevation_range()[1]:.0f}"
    )
    print(render_hillshade(field, width=64, height=20))

    dem = DEM(field, Path(dem_path).stem)
    mesh = dem.to_scattered_trimesh(6000, seed=13)
    pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
    pm.normalize_lod()

    with tempfile.TemporaryDirectory() as tmp:
        db = Database(Path(tmp) / "db")
        store = DirectMeshStore.build(pm, db, build_connection_lists(pm))

        # Serve a 2x2 grid of tiles, finest in the south-west,
        # coarsening to the north-east (e.g. around a viewer there).
        bounds = mesh.bounds()
        mid_x = (bounds.min_x + bounds.max_x) / 2
        mid_y = (bounds.min_y + bounds.max_y) / 2
        tiles = {
            "sw": (bounds.min_x, bounds.min_y, mid_x, mid_y, 0.80),
            "se": (mid_x, bounds.min_y, bounds.max_x, mid_y, 0.90),
            "nw": (bounds.min_x, mid_y, mid_x, bounds.max_y, 0.90),
            "ne": (mid_x, mid_y, bounds.max_x, bounds.max_y, 0.97),
        }
        print(f"\n{'tile':>4} {'lod':>8} {'points':>7} {'tris':>6} {'DA':>4}")
        for name, (x0, y0, x1, y1, pctl) in tiles.items():
            from repro.geometry.primitives import Rect

            roi = Rect(x0, y0, x1, y1)
            lod = pm.lod_percentile(pctl)
            db.begin_measured_query()
            result = store.uniform_query(roi, lod)
            vertices, triangles = result.vertex_mesh()
            path = out / f"tile_{name}.obj"
            write_obj(path, vertices=vertices, triangles=triangles)
            print(
                f"{name:>4} {lod:>8.2f} {len(vertices):>7} "
                f"{len(triangles):>6} {db.disk_accesses:>4}  -> {path}"
            )
        db.close()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
