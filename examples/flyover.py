"""Flyover: viewpoint-dependent terrain streaming along a camera path.

Simulates the workload the paper's introduction motivates — a virtual
walkthrough where the camera moves across the terrain and every frame
needs a mesh that is fine near the camera and coarse in the distance.
Each frame issues one multi-base Direct Mesh query; the script reports
per-frame disk accesses, retrieved volume, the optimiser's plan, and
how much the classic PM processor would have paid for the same frame.

Run:  python examples/flyover.py [n_frames]
"""

import math
import sys
import tempfile
from pathlib import Path

from repro.baselines.pm_db import PMStore
from repro.core import DirectMeshStore, build_connection_lists
from repro.geometry.plane import RadialLodField
from repro.geometry.primitives import Rect
from repro.mesh import SimplifyConfig, simplify_to_pm
from repro.storage import Database
from repro.terrain import DEM, ridge_field


def camera_path(bounds: Rect, n_frames: int):
    """A gentle S-curve across the terrain, heading +y."""
    for i in range(n_frames):
        t = i / max(1, n_frames - 1)
        x = bounds.min_x + bounds.width * (0.5 + 0.25 * math.sin(t * math.pi * 2))
        y = bounds.min_y + bounds.height * (0.15 + 0.7 * t)
        yield (x, y)


def main(n_frames: int = 8) -> None:
    print("building terrain and stores (one-off cost)...")
    field = ridge_field(exponent=8, seed=21)
    mesh = DEM(field, "flyover").to_scattered_trimesh(8000, seed=21)
    pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
    pm.normalize_lod()
    connections = build_connection_lists(pm)

    with tempfile.TemporaryDirectory() as tmp:
        db = Database(Path(tmp) / "db")
        dm = DirectMeshStore.build(pm, db, connections)
        pm_store = PMStore.build(pm, db)
        bounds = mesh.bounds()
        view_w = bounds.width * 0.35
        view_h = bounds.height * 0.35
        e_min = pm.lod_percentile(0.70)
        e_max = pm.lod_percentile(0.98)

        print(
            f"\n{'frame':>5} {'points':>7} {'tris':>6} {'strips':>6} "
            f"{'DM DA':>6} {'PM DA':>6} {'saved':>6}"
        )
        total_dm = total_pm = 0
        for frame, (cx, cy) in enumerate(camera_path(bounds, n_frames)):
            # View frustum footprint: a rectangle ahead of the camera.
            roi = Rect(
                max(bounds.min_x, cx - view_w / 2),
                max(bounds.min_y, cy),
                min(bounds.max_x, cx + view_w / 2),
                min(bounds.max_y, cy + view_h),
            )
            # Radial viewer model (paper Section 2: f(m.e, d) <= E):
            # tolerated error grows with distance from the camera.
            plane = RadialLodField(
                roi,
                viewer=(cx, cy),
                rate=(e_max - e_min) / view_h,
                e_min=e_min,
                e_max=e_max,
            )

            db.begin_measured_query()
            result = dm.multi_base_query(plane)
            dm_da = db.disk_accesses
            db.begin_measured_query()
            pm_store.viewdep_query(plane)
            pm_da = db.disk_accesses
            total_dm += dm_da
            total_pm += pm_da
            print(
                f"{frame:>5} {len(result):>7} {len(result.triangles()):>6} "
                f"{result.n_range_queries:>6} {dm_da:>6} {pm_da:>6} "
                f"{(pm_da - dm_da) / pm_da:>6.0%}"
            )

        print(
            f"\nflyover total: DM {total_dm} vs PM {total_pm} disk accesses "
            f"({total_pm / max(1, total_dm):.1f}x reduction)"
        )
        db.close()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
