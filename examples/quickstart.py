"""Quickstart: build a Direct Mesh terrain store and query it.

Walks the full pipeline on a small synthetic terrain:

1. generate terrain and triangulate it (TIN);
2. build the progressive mesh (PM) by quadric-ordered edge collapse;
3. normalise LOD and compute Direct Mesh connection lists;
4. store everything in a page-based database with a 3D R*-tree;
5. run a viewpoint-independent and a viewpoint-dependent query,
   reconstruct the meshes, and report the disk-access counts.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro.core import DirectMeshStore, build_connection_lists
from repro.geometry.plane import QueryPlane, max_angle
from repro.mesh import SimplifyConfig, simplify_to_pm
from repro.storage import Database
from repro.terrain import DEM, gaussian_hills_field, write_obj
from repro.viz import render_points


def main() -> None:
    # 1. Terrain: a dozen smooth hills, sampled at 3000 scattered points.
    field = gaussian_hills_field(size=128, n_hills=12, amplitude=90, seed=3)
    dem = DEM(field, "quickstart-hills")
    mesh = dem.to_scattered_trimesh(3000, seed=3)
    print(f"terrain: {mesh.n_vertices} points, {mesh.n_triangles} triangles")

    # 2-3. The multiresolution structure.
    pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
    pm.normalize_lod()
    connections = build_connection_lists(pm)
    sizes = [len(v) for v in connections.values()]
    print(
        f"progressive mesh: {len(pm.nodes)} nodes, "
        f"max LOD {pm.max_lod():.2f}, "
        f"avg similar-LOD connections {sum(sizes) / len(sizes):.1f}"
    )

    # 4. The database-resident Direct Mesh.
    with tempfile.TemporaryDirectory() as tmp:
        db = Database(Path(tmp) / "db")
        store = DirectMeshStore.build(pm, db, connections)
        report = store.build_report
        assert report is not None
        print(
            f"store: {report.heap_pages} data pages, "
            f"{report.index_pages} R*-tree pages"
        )

        # 5a. Viewpoint-independent query: 25% of the area at a mid LOD.
        roi = mesh.bounds().scaled(0.5)
        lod = pm.lod_percentile(0.85)  # Keeps ~15% of the detail.
        db.begin_measured_query()
        result = store.uniform_query(roi, lod)
        print(
            f"\nuniform query  Q(roi=25% area, lod={lod:.2f}): "
            f"{len(result)} points, {len(result.triangles())} triangles, "
            f"{db.disk_accesses} disk accesses"
        )
        print(render_points(result.points(), width=64, height=20))

        # 5b. Viewpoint-dependent query: finest near the viewer (south),
        # coarsening northwards.  The tilt angle relative to its
        # maximum (paper Figure 7) is reported alongside.
        e_min = pm.lod_percentile(0.72)
        e_max = pm.lod_percentile(0.98)
        plane = QueryPlane(roi, e_min, e_max)
        theta_fraction = plane.angle / max_angle(store.max_lod, roi.height)
        print(
            f"\nquery plane: e {e_min:.2f} -> {e_max:.2f}, "
            f"angle = {theta_fraction:.1%} of theta_max"
        )
        db.begin_measured_query()
        viewdep = store.multi_base_query(plane)
        plan = viewdep.plan
        print(
            f"\nviewpoint-dependent query (multi-base, "
            f"{viewdep.n_range_queries} range quer"
            f"{'y' if viewdep.n_range_queries == 1 else 'ies'}"
            + (
                f", predicted gain {plan.predicted_gain:.0f}"
                if plan is not None
                else ""
            )
            + f"): {len(viewdep)} points, {db.disk_accesses} disk accesses"
        )
        print(render_points(viewdep.points(), width=64, height=20))

        # Export the viewpoint-dependent mesh for any OBJ viewer.
        vertices, triangles = viewdep.vertex_mesh()
        out = Path("results")
        out.mkdir(exist_ok=True)
        write_obj(out / "quickstart_viewdep.obj", vertices=vertices,
                  triangles=triangles)
        print(f"\nmesh exported to {out / 'quickstart_viewdep.obj'}")
        db.close()


if __name__ == "__main__":
    main()
