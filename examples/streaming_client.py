"""Streaming client: delta-based terrain updates for a moving viewer.

The scenario the paper's introduction motivates — a thin client
(mobile / web) walking across a large terrain, receiving only the
*changes* to its mesh at each step.  A :class:`TerrainSession` diffs
consecutive viewpoint-dependent queries, so the server transmits the
handful of Direct Mesh records entering the view instead of the whole
frame, and the self-describing connection lists let the client splice
them in locally.

Run:  python examples/streaming_client.py [n_steps]
"""

import sys
import tempfile
from pathlib import Path

from repro.core import DirectMeshStore, TerrainSession, build_connection_lists
from repro.geometry.plane import RadialLodField
from repro.mesh import SimplifyConfig, simplify_to_pm
from repro.storage import Database
from repro.terrain import DEM, fractal_field


def main(n_steps: int = 12) -> None:
    print("building terrain store (one-off)...")
    field = fractal_field(exponent=8, seed=33)
    mesh = DEM(field, "stream").to_scattered_trimesh(8000, seed=33)
    pm = simplify_to_pm(mesh, SimplifyConfig(error_measure="vertical"))
    pm.normalize_lod()

    with tempfile.TemporaryDirectory() as tmp:
        db = Database(Path(tmp) / "db")
        store = DirectMeshStore.build(pm, db, build_connection_lists(pm))
        session = TerrainSession(store)

        bounds = mesh.bounds()
        roi_h = bounds.height * 0.45
        roi_w = bounds.width * 0.45
        step = (bounds.height - roi_h) / max(1, (n_steps - 1) * 3)
        rate = pm.max_lod() / (roi_h * 10)

        print(
            f"\n{'step':>4} {'mesh':>6} {'added':>6} {'gone':>5} "
            f"{'kept':>6} {'churn':>6} {'bytes':>8} {'DA':>4}"
        )
        total_bytes = total_da = 0
        full_bytes = 0
        for i in range(n_steps):
            vy = bounds.min_y + i * step
            from repro.geometry.primitives import Rect

            roi = Rect(
                bounds.center.x - roi_w / 2,
                vy,
                bounds.center.x + roi_w / 2,
                vy + roi_h,
            )
            view = RadialLodField(
                roi,
                viewer=(bounds.center.x, vy),
                rate=rate,
                e_min=pm.lod_percentile(0.85),
                e_max=pm.max_lod(),
            )
            delta = session.update(view)
            mesh_size = len(session.active_ids)
            frame_bytes = delta.bytes_added + 8 * len(delta.removed)
            total_bytes += frame_bytes
            total_da += delta.disk_accesses
            # What a stateless server would have sent: the whole frame.
            full_bytes += sum(
                110 for _ in range(mesh_size)
            )  # ~avg record size
            print(
                f"{i:>4} {mesh_size:>6} {len(delta.added):>6} "
                f"{len(delta.removed):>5} {delta.kept:>6} "
                f"{delta.churn:>6.0%} {frame_bytes:>8} "
                f"{delta.disk_accesses:>4}"
            )

        print(
            f"\ntransfer: {total_bytes / 1024:.1f} KiB as deltas vs "
            f"~{full_bytes / 1024:.1f} KiB stateless "
            f"({full_bytes / max(1, total_bytes):.1f}x saved); "
            f"{total_da} total disk accesses"
        )
        db.close()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
