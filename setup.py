"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``.  Keeping
a ``setup.py`` (and omitting ``[build-system]`` from pyproject.toml)
lets ``pip install -e .`` fall back to the legacy editable install,
which needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Direct Mesh: a Multiresolution Approach to "
        "Terrain Visualization' (ICDE 2004)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
